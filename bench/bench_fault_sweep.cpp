// Synaptic-fault robustness sweep — accuracy vs fault rate for deterministic
// vs stochastic STDP, after the authors' companion paper ("Improving
// Robustness of ReRAM-based SNN Accelerator with Stochastic STDP", She et
// al. 2019): ReRAM crossbar cells stuck at G_min/G_max and random conductance
// perturbation.
//
// Protocol: train + label each rule on clean synapses, then damage the
// trained conductance matrix at increasing fault rates (same Philox fault
// pattern for both rules, so they face identical defects) and measure
// inference accuracy with the clean labelling. Expected shape: both rules
// degrade with fault rate, with stochastic STDP holding accuracy better —
// its weight distribution is driven toward the rails anyway, so stuck cells
// disturb the learned patterns less.
#include "bench_common.hpp"
#include "pss/io/csv.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/robust/synaptic_faults.hpp"

using namespace pss;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fault_sweep", [](const Config& args) {
    bench::Scale scale = bench::parse_scale(args);
    if (scale.name == "quick") {
      // 20 evaluation cells: keep each affordable.
      scale.eval_images = 150;
    }
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);

    bench::print_header(
        "Synaptic-fault sweep — accuracy vs stuck/perturbed synapse rate",
        "stochastic STDP degrades more gracefully than deterministic STDP "
        "under ReRAM stuck-at and perturbation faults (companion paper)");

    const std::vector<double> fault_rates = {0.0, 0.05, 0.10, 0.20, 0.30};
    CsvWriter csv(bench::out_dir() + "/fault_sweep.csv",
                  {"rule", "fault", "rate", "accuracy", "damaged_synapses"});

    for (const StdpKind kind :
         {StdpKind::kDeterministic, StdpKind::kStochastic}) {
      ExperimentSpec spec =
          bench::make_spec(scale, kind, LearningOption::kFloat32, seed);
      WtaNetwork net(spec.network_config());
      UnsupervisedTrainer trainer(net, spec.trainer_config());
      trainer.train(mnist.train.head(spec.train_images));

      const TrainerConfig tc = spec.trainer_config();
      const PixelFrequencyMap map(tc.f_min_hz, tc.f_max_hz);
      const Dataset label_set = mnist.test.head(spec.label_images);
      const Dataset eval_set = mnist.test.slice(
          spec.label_images, spec.label_images + spec.eval_images);
      const LabelingResult labels =
          label_neurons(net, label_set, map, spec.t_label_ms);
      const NetworkSnapshot snap = NetworkSnapshot::capture(net);

      std::printf("\n%s STDP (%zu/%zu neurons labelled)\n",
                  stdp_kind_name(kind), labels.labelled_neurons,
                  spec.neuron_count);
      TablePrinter t({"fault rate", "stuck-at acc (%)", "perturb acc (%)"});
      for (const double rate : fault_rates) {
        std::vector<std::string> cells = {format_fixed(rate, 2)};
        for (const char* fault : {"stuck", "perturb"}) {
          // Same fault-pattern seed for both rules and both fault kinds at a
          // given rate: the comparison isolates the learning rule.
          robust::SynapticFaultPlan plan;
          plan.seed = 0xfa571 + static_cast<std::uint64_t>(rate * 1000);
          if (std::string(fault) == "stuck") {
            plan.stuck_lo_rate = rate / 2;
            plan.stuck_hi_rate = rate / 2;
          } else {
            plan.perturb_rate = rate;
            plan.perturb_sigma = 0.2;
          }

          WtaNetwork victim(spec.network_config());
          snap.restore(victim);
          const robust::SynapticFaultSummary damage =
              robust::apply_synaptic_faults(victim.conductance(), plan);
          SnnClassifier classifier(victim, labels.neuron_labels,
                                   labels.class_count, map, spec.t_infer_ms);
          const double accuracy = classifier.evaluate(eval_set).accuracy;

          cells.push_back(format_fixed(100.0 * accuracy, 1));
          csv.row({std::string(stdp_kind_name(kind)), fault,
                   format_fixed(rate, 2), format_fixed(accuracy, 4),
                   std::to_string(damage.total())});
          bench::record(std::string("fault_sweep.") + stdp_kind_name(kind) +
                            "." + fault + "." + format_fixed(rate, 2),
                        accuracy);
        }
        t.add_row(cells);
      }
      t.print();
    }

    const std::string record = bench::write_bench_record("fault_sweep");
    std::printf("\nwrote %s/fault_sweep.csv and %s\n", bench::out_dir().c_str(),
                record.c_str());
  });
}
