// bench_serve — load generator for the pss_serve daemon (ROADMAP item 2).
//
// Spins up an in-process ServeServer on a small model, replays a pipelined
// classify workload from several client connections, and records end-to-end
// latency percentiles plus the daemon's fault-tolerance counters into
// out/BENCH_serve.json (schema pss.metrics.v1, like every other bench).
//
// Keys (beyond the universal ones in bench_common.hpp):
//   requests=200    total classify requests across all clients
//   clients=4       concurrent client connections (pipelined)
//   workers=2       serve worker threads
//   max_batch=8 window_ms=2 queue=256   batching / admission knobs
//   t_present=20    simulated presentation ms per request
//   neurons=16 channels=64              model geometry
//   faults=<spec>   arm fault injection, e.g.
//                   faults=serve.worker:rate=0.05,kind=transient — the
//                   requeue/restart counters then measure recovery cost
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/serve/client.hpp"
#include "pss/serve/server.hpp"

using namespace pss;

namespace {

std::string write_bench_model(std::size_t neurons, std::size_t channels,
                              std::uint64_t seed) {
  WtaConfig cfg;
  cfg.neuron_count = neurons;
  cfg.input_channels = channels;
  cfg.seed = seed;
  WtaNetwork net(cfg);
  std::vector<int> labels(neurons);
  for (std::size_t i = 0; i < neurons; ++i) labels[i] = static_cast<int>(i % 10);
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_serve_model.bin")
          .string();
  save_snapshot(path, NetworkSnapshot::capture(net, &labels));
  return path;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

void run(const Config& args) {
  const std::size_t requests =
      static_cast<std::size_t>(args.get_int("requests", 200));
  const std::size_t clients =
      static_cast<std::size_t>(args.get_int("clients", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));

  const std::string faults = args.get_string("faults", "");
  if (!faults.empty()) robust::faults().arm_from_spec(faults);

  serve::ServeOptions opts;
  opts.model_path = write_bench_model(
      static_cast<std::size_t>(args.get_int("neurons", 16)),
      static_cast<std::size_t>(args.get_int("channels", 64)), seed);
  opts.t_present_ms = args.get_double("t_present", 20.0);
  opts.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  opts.max_batch = static_cast<std::size_t>(args.get_int("max_batch", 8));
  opts.window_ms = static_cast<std::uint32_t>(args.get_int("window_ms", 2));
  opts.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 256));
  serve::ServeServer server(opts);

  bench::print_header(
      "bench_serve — fault-tolerant serving daemon load test",
      "every admitted request is answered; faults cost a requeue, not an "
      "error");

  // Pipelined load: each client pre-computes its images, floods its share of
  // the request budget, then drains responses while timing each round trip
  // from its own send timestamp.
  const std::size_t per_client = requests / clients;
  const std::size_t channels = static_cast<std::size_t>(
      args.get_int("channels", 64));
  std::vector<std::vector<double>> latencies_ms(clients);
  std::vector<std::uint64_t> errors(clients, 0);
  std::vector<std::thread> threads;
  bench::RecordedTimer wall("serve.wall");
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ServeClient client(server.port());
      std::vector<std::uint64_t> sent_ns(per_client);
      std::vector<std::uint8_t> pixels(channels);
      // Window-sized pipelining keeps per-request latency meaningful: a
      // fully open pipe would measure queue depth, not service time.
      const std::size_t pipeline = 8;
      std::size_t sent = 0, received = 0;
      while (received < per_client) {
        while (sent < per_client && sent - received < pipeline) {
          for (std::size_t j = 0; j < channels; ++j) {
            pixels[j] =
                static_cast<std::uint8_t>((c * 131 + sent * 31 + j * 7) % 256);
          }
          serve::Request request;
          request.verb = serve::Verb::kClassify;
          request.id = sent;
          request.body = pixels;
          sent_ns[sent] = obs::monotonic_ns();
          client.send(request);
          ++sent;
        }
        const serve::Response response = client.receive();
        if (response.status == serve::Status::kOk) {
          latencies_ms[c].push_back(
              static_cast<double>(obs::monotonic_ns() -
                                  sent_ns[response.id]) /
              1e6);
        } else {
          ++errors[c];
        }
        ++received;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.stop();
  server.stop();

  std::vector<double> all_ms;
  std::uint64_t total_errors = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    all_ms.insert(all_ms.end(), latencies_ms[c].begin(),
                  latencies_ms[c].end());
    total_errors += errors[c];
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double p50 = percentile(all_ms, 0.50);
  const double p99 = percentile(all_ms, 0.99);
  const double rps =
      wall_s > 0.0 ? static_cast<double>(all_ms.size()) / wall_s : 0.0;

  bench::record("serve.requests", static_cast<double>(per_client * clients));
  bench::record("serve.answered_ok", static_cast<double>(all_ms.size()));
  bench::record("serve.errors", static_cast<double>(total_errors));
  bench::record("serve.latency_p50_ms", p50);
  bench::record("serve.latency_p99_ms", p99);
  bench::record("serve.throughput_rps", rps);
  bench::record(
      "serve.requeues",
      static_cast<double>(obs::metrics().counter("serve.requeue").value()));
  bench::record("serve.worker_restarts",
                static_cast<double>(
                    obs::metrics().counter("serve.worker_restarts").value()));
  bench::record(
      "serve.shed",
      static_cast<double>(obs::metrics().counter("serve.shed").value()));

  TablePrinter table({"metric", "value"});
  table.add_row({"requests ok", std::to_string(all_ms.size())});
  table.add_row({"errors", std::to_string(total_errors)});
  table.add_row({"p50 latency (ms)", std::to_string(p50)});
  table.add_row({"p99 latency (ms)", std::to_string(p99)});
  table.add_row({"throughput (req/s)", std::to_string(rps)});
  table.add_row({"requeues",
             std::to_string(obs::metrics().counter("serve.requeue").value())});
  table.add_row({"worker restarts",
             std::to_string(
                 obs::metrics().counter("serve.worker_restarts").value())});
  table.print();

  std::printf("\nwrote %s\n", bench::write_bench_record("serve").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "serve",
                           [](const Config& args) { run(args); });
}
