// Ablation benches for the design choices DESIGN.md calls out:
//   1. stochastic depression pathway: stale-at-post (Srinivasan-style, the
//      default) vs pre-spike eq. 7 verbatim vs both;
//   2. WTA inhibition duration during learning;
//   3. homeostasis (adaptive threshold) on/off;
//   4. readout inhibition softness (t_inh_readout).
// Each ablation runs the same scaled MNIST protocol and reports accuracy.
#include "bench_common.hpp"
#include "pss/io/csv.hpp"

using namespace pss;

namespace {

ExperimentResult run_with(const bench::Scale& scale,
                          const LabeledDataset& data, std::uint64_t seed,
                          const std::function<void(WtaConfig&)>& patch,
                          const std::string& name) {
  // run_learning_experiment derives the WtaConfig from the spec; for config
  // ablations we inline the same protocol with a patched config.
  ExperimentSpec spec =
      bench::make_spec(scale, StdpKind::kStochastic, LearningOption::kFloat32,
                       seed);
  spec.name = name;
  WtaConfig cfg = spec.network_config();
  patch(cfg);
  WtaNetwork net(cfg);
  UnsupervisedTrainer trainer(net, spec.trainer_config());
  trainer.train(data.train.head(spec.train_images));
  const PixelFrequencyMap map(spec.trainer_config().f_min_hz,
                              spec.trainer_config().f_max_hz);
  const auto [label_set, eval_set] = data.labelling_split(spec.label_images);
  const LabelingResult labels =
      label_neurons(net, label_set, map, spec.t_label_ms);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           spec.t_infer_ms);
  ExperimentResult r;
  r.name = name;
  r.accuracy = classifier.evaluate(eval_set.head(spec.eval_images)).accuracy;
  r.labelled_neurons = labels.labelled_neurons;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "ablations", [](const Config& args) {
    bench::Scale scale = bench::parse_scale(args);
    if (scale.name == "quick") scale.train_images = 250;
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);
    CsvWriter csv(bench::out_dir() + "/ablations.csv",
                  {"ablation", "variant", "accuracy"});

    bench::print_header("Ablation 1 — stochastic depression pathway",
                        "stale-at-post drives background synapses down; the "
                        "rate-linear eq.7-only pathway cannot (DESIGN.md)");
    TablePrinter t1({"depression mode", "accuracy (%)", "labelled"});
    for (const DepressionMode mode :
         {DepressionMode::kStaleAtPost, DepressionMode::kPreSpikeEq7,
          DepressionMode::kBoth}) {
      const auto r = run_with(
          scale, mnist, seed,
          [mode](WtaConfig& cfg) { cfg.stdp.depression = mode; },
          depression_mode_name(mode));
      t1.add_row({depression_mode_name(mode),
                  format_fixed(100 * r.accuracy, 1),
                  std::to_string(r.labelled_neurons)});
      csv.row({"depression", depression_mode_name(mode),
               format_fixed(r.accuracy, 4)});
    }
    t1.print();

    bench::print_header("Ablation 2 — WTA inhibition duration (learning)",
                        "too short: winners not isolated; too long: too few "
                        "learning events per presentation");
    TablePrinter t2({"t_inh (ms)", "accuracy (%)"});
    for (const double t_inh : {2.0, 10.0, 20.0, 40.0}) {
      const auto r = run_with(
          scale, mnist, seed,
          [t_inh](WtaConfig& cfg) { cfg.t_inh_ms = t_inh; },
          "t_inh=" + format_fixed(t_inh, 0));
      t2.add_row({format_fixed(t_inh, 0), format_fixed(100 * r.accuracy, 1)});
      csv.row({"t_inh", format_fixed(t_inh, 0), format_fixed(r.accuracy, 4)});
    }
    t2.print();

    bench::print_header("Ablation 3 — adaptive-threshold homeostasis",
                        "without it a few early winners capture every "
                        "pattern");
    TablePrinter t3({"homeostasis", "accuracy (%)", "labelled"});
    for (const bool enabled : {true, false}) {
      const auto r = run_with(
          scale, mnist, seed,
          [enabled](WtaConfig& cfg) { cfg.homeostasis.enabled = enabled; },
          enabled ? "on" : "off");
      t3.add_row({enabled ? "on" : "off", format_fixed(100 * r.accuracy, 1),
                  std::to_string(r.labelled_neurons)});
      csv.row({"homeostasis", enabled ? "on" : "off",
               format_fixed(r.accuracy, 4)});
    }
    t3.print();

    bench::print_header("Ablation 4 — readout inhibition softness",
                        "hard WTA at readout reduces the class score to a "
                        "single neuron's vote; a brief veto works best");
    TablePrinter t4({"t_inh readout (ms)", "accuracy (%)"});
    for (const double t : {0.0, 1.0, 5.0, 20.0}) {
      const auto r = run_with(
          scale, mnist, seed,
          [t](WtaConfig& cfg) {
            cfg.readout_inhibition = t > 0.0;
            cfg.t_inh_readout_ms = t;
          },
          "readout=" + format_fixed(t, 0));
      t4.add_row({format_fixed(t, 0), format_fixed(100 * r.accuracy, 1)});
      csv.row({"readout_inh", format_fixed(t, 0), format_fixed(r.accuracy, 4)});
    }
    t4.print();

    bench::print_header(
        "Ablation 5 — first-layer neuron model",
        "the simulator supports different neuron models: the WTA pipeline "
        "runs unchanged on Izhikevich neurons and learns above chance, but "
        "every network constant (drive, inhibition, homeostasis, STDP "
        "timing) is calibrated for the paper's LIF — the gap quantifies how "
        "model-specific that tuning is");
    TablePrinter t5({"neuron model", "accuracy (%)", "labelled"});
    for (const NeuronModelKind model :
         {NeuronModelKind::kLif, NeuronModelKind::kIzhikevich}) {
      const auto r = run_with(
          scale, mnist, seed,
          [model](WtaConfig& cfg) { cfg.neuron_model = model; },
          neuron_model_name(model));
      t5.add_row({neuron_model_name(model), format_fixed(100 * r.accuracy, 1),
                  std::to_string(r.labelled_neurons)});
      csv.row({"neuron_model", neuron_model_name(model),
               format_fixed(r.accuracy, 4)});
    }
    t5.print();

    bench::print_header("Ablation 6 — amplitude auto-gain",
                        "the 'tuned to input frequency' normalization: "
                        "without it, boosted-frequency input overdrives the "
                        "network (this is what limits the deterministic "
                        "baseline's usable f_max in Fig. 7a)");
    TablePrinter t6({"auto-gain", "f_max (Hz)", "accuracy (%)"});
    for (const bool gain : {true, false}) {
      for (const double f_max : {22.0, 66.0}) {
        ExperimentSpec spec = bench::make_spec(
            scale, StdpKind::kStochastic, LearningOption::kHighFrequency,
            seed);
        spec.f_min_hz = f_max / 22.0;
        spec.f_max_hz = f_max;
        spec.t_learn_ms = 500.0 * 22.0 / f_max;
        spec.train_images = scale.train_images;
        WtaConfig cfg = spec.network_config();
        if (!gain) cfg.reference_total_rate_hz = 0.0;
        WtaNetwork net(cfg);
        UnsupervisedTrainer trainer(net, spec.trainer_config());
        trainer.train(mnist.train.head(spec.train_images));
        const PixelFrequencyMap map(spec.trainer_config().f_min_hz,
                                    spec.trainer_config().f_max_hz);
        const auto [lset, eset] = mnist.labelling_split(spec.label_images);
        const LabelingResult labels =
            label_neurons(net, lset, map, spec.t_label_ms);
        SnnClassifier cls(net, labels.neuron_labels, labels.class_count, map,
                          spec.t_infer_ms);
        const double acc =
            cls.evaluate(eset.head(spec.eval_images)).accuracy;
        t6.add_row({gain ? "on" : "off", format_fixed(f_max, 0),
                    format_fixed(100 * acc, 1)});
        csv.row({"auto_gain", (gain ? "on_" : "off_") + format_fixed(f_max, 0),
                 format_fixed(acc, 4)});
      }
    }
    t6.print();
  });
}
