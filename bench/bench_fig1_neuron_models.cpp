// Fig. 1 — neuron and synapse characterization:
//   (a) LIF spiking frequency vs input current (paper parameters),
//   (c) stochastic STDP probability vs Δt (eq. 6–7, Table I gates),
//   (d) pixel intensity -> spike-train frequency conversion.
// Also prints the Izhikevich f-I curve (the "supports different neuron
// models" contribution) and writes fig1_*.csv for replotting.
#include "bench_common.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/io/csv.hpp"
#include "pss/neuron/adex.hpp"
#include "pss/neuron/characterize.hpp"
#include "pss/synapse/stdp_stochastic.hpp"

using namespace pss;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig1_neuron_models", [](const Config&) {
    bench::print_header(
        "Fig. 1a — LIF spiking frequency vs input current",
        "LIF with Sec. III-D parameters: silent below rheobase (~2.6), "
        "frequency rises monotonically with current");

    const LifParameters lif = paper_lif_parameters();
    std::printf("rheobase (measured): %.3f\n\n", lif_rheobase(lif));

    TablePrinter fi({"current", "LIF freq (Hz)", "Izhikevich RS freq (Hz)"});
    const auto lif_curve = lif_fi_curve(lif, 0.0, 40.0, 21);
    const auto izh_curve =
        izhikevich_fi_curve(izhikevich_regular_spiking(), 0.0, 40.0, 21);
    CsvWriter csv(bench::out_dir() + "/fig1a_fi_curve.csv",
                  {"current", "lif_hz", "izhikevich_hz"});
    for (std::size_t i = 0; i < lif_curve.size(); ++i) {
      fi.add_row(format_fixed(lif_curve[i].current, 1),
                 {lif_curve[i].frequency_hz, izh_curve[i].frequency_hz});
      csv.row({lif_curve[i].current, lif_curve[i].frequency_hz,
               izh_curve[i].frequency_hz});
    }
    fi.print();

    // Extension models: AdEx f-I (current in pA on its own physiological
    // scale, hence a separate table).
    std::printf("\nAdEx f-I (extension model):\n");
    TablePrinter adex_fi({"current (pA)", "AdEx RS (Hz)", "AdEx adapting (Hz)"});
    for (double i = 0.0; i <= 1000.0 + 1e-9; i += 200.0) {
      adex_fi.add_row(format_fixed(i, 0),
                      {adex_spiking_frequency(adex_regular_spiking(), i),
                       adex_spiking_frequency(adex_adapting(), i)});
    }
    adex_fi.print();

    bench::print_header(
        "Fig. 1c — stochastic STDP probabilities vs Δt (eq. 6-7)",
        "P_pot peaks at γ_pot for Δt→0+ and decays with τ_pot; P_dep peaks "
        "at γ_dep for Δt→0- and decays with τ_dep");

    TablePrinter gate_table(
        {"Δt (ms)", "P_pot fp32", "P_dep fp32", "P_pot high-freq",
         "P_dep high-freq"});
    const StochasticGate fp32(table1_row(LearningOption::kFloat32).gate);
    const StochasticGate hf(table1_row(LearningOption::kHighFrequency).gate);
    CsvWriter gate_csv(bench::out_dir() + "/fig1c_gates.csv",
                       {"dt_ms", "p_pot_fp32", "p_dep_fp32", "p_pot_hf",
                        "p_dep_hf"});
    for (double dt = -50.0; dt <= 50.0 + 1e-9; dt += 10.0) {
      gate_table.add_row(
          format_fixed(dt, 0),
          {fp32.p_pot(dt), fp32.p_dep(dt), hf.p_pot(dt), hf.p_dep(dt)}, 3);
      gate_csv.row({dt, fp32.p_pot(dt), fp32.p_dep(dt), hf.p_pot(dt),
                    hf.p_dep(dt)});
    }
    gate_table.print();

    bench::print_header(
        "Fig. 1d — pixel intensity to spike-train frequency",
        "frequency proportional to 8-bit intensity, range [f_min, f_max]");

    TablePrinter enc({"intensity", "baseline 1-22 Hz", "high-freq 5-78 Hz"});
    const PixelFrequencyMap base(1.0, 22.0);
    const PixelFrequencyMap high(5.0, 78.0);
    for (int v : {0, 32, 64, 96, 128, 160, 192, 224, 255}) {
      enc.add_row(std::to_string(v),
                  {base.frequency(static_cast<std::uint8_t>(v)),
                   high.frequency(static_cast<std::uint8_t>(v))});
    }
    enc.print();
  });
}
