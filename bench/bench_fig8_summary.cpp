// Fig. 8 — summary comparison of learning configurations:
//   (a) conductance maps (PGM sheets, one per configuration),
//   (b) accuracy and run-time per configuration,
//   (c) moving error rate vs simulation time — the high-frequency mode's
//       error drops much faster.
// Also reports the Sec. IV-A anchor: deterministic fp32 accuracy (the
// paper's baseline reproduces Diehl's 91.9% at 92.2%; at reduced scale the
// shape is "baseline det ≈ stochastic on simple data, both well above
// chance").
#include "bench_common.hpp"
#include "pss/io/csv.hpp"
#include "pss/io/pgm.hpp"
#include "pss/learning/trainer.hpp"

using namespace pss;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig8_summary", [](const Config& args) {
    const bench::Scale scale = bench::parse_scale(args);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);
    const LabeledDataset fashion =
        bench::load_dataset("fashion-mnist", scale, 7);

    bench::print_header(
        "Fig. 8 — comparison of learning configurations",
        "stochastic STDP: higher accuracy on the complex set at similar "
        "run-time; high-frequency mode: much lower learning time with "
        "graceful accuracy degradation");

    struct Row {
      std::string label;
      const LabeledDataset* data;
      StdpKind kind;
      LearningOption option;
    };
    const std::vector<Row> rows = {
        {"baseline det fp32 (MNIST)", &mnist, StdpKind::kDeterministic,
         LearningOption::kFloat32},
        {"stochastic fp32 (MNIST)", &mnist, StdpKind::kStochastic,
         LearningOption::kFloat32},
        {"stoch high-freq (MNIST)", &mnist, StdpKind::kStochastic,
         LearningOption::kHighFrequency},
        {"baseline det fp32 (Fashion)", &fashion, StdpKind::kDeterministic,
         LearningOption::kFloat32},
        {"stochastic fp32 (Fashion)", &fashion, StdpKind::kStochastic,
         LearningOption::kFloat32},
    };

    TablePrinter t({"configuration", "accuracy (%)", "error (%)",
                    "train wall (s)", "sim time (s bio)", "map contrast"});
    CsvWriter trace_csv(bench::out_dir() + "/fig8c_error_traces.csv",
                        {"configuration", "images", "sim_minutes",
                         "error_rate"});
    std::vector<std::pair<std::string, ExperimentResult>> results;
    for (const Row& row : rows) {
      ExperimentSpec spec = bench::make_spec(scale, row.kind, row.option, seed);
      spec.name = row.label;
      spec.checkpoints = 4;  // Fig. 8c moving-error curve
      const ExperimentResult r = run_learning_experiment(spec, *row.data);
      t.add_row({row.label, format_fixed(100 * r.accuracy, 1),
                 format_fixed(100 * r.error_rate, 1),
                 format_fixed(r.train_wall_seconds, 1),
                 format_fixed(r.simulated_learning_ms * 1e-3, 0),
                 format_fixed(r.conductance_contrast, 3)});
      for (const auto& p : r.error_trace) {
        trace_csv.row({0.0, static_cast<double>(p.images_seen),
                       p.simulated_ms / 60000.0, p.error_rate});
      }
      results.emplace_back(row.label, r);
    }
    t.print();

    std::printf("\nFig. 8c — moving error rate vs simulation time:\n");
    TablePrinter c({"configuration", "checkpoint sim-minutes : error(%)"});
    for (const auto& [label, r] : results) {
      std::string cells;
      for (const auto& p : r.error_trace) {
        cells += format_fixed(p.simulated_ms / 60000.0, 1) + "m:" +
                 format_fixed(100 * p.error_rate, 0) + "%  ";
      }
      c.add_row({label, cells});
    }
    c.print();

    // Fig. 8a conductance sheets for the MNIST configurations.
    for (const Row& row : rows) {
      if (row.data != &mnist) continue;
      ExperimentSpec spec = bench::make_spec(scale, row.kind, row.option, seed);
      WtaNetwork net(spec.network_config());
      UnsupervisedTrainer trainer(net, spec.trainer_config());
      trainer.train(mnist.train.head(spec.train_images));
      const auto maps = conductance_maps(net, 25);
      std::string file = "fig8a_";
      file += stdp_kind_name(row.kind);
      file += row.option == LearningOption::kHighFrequency ? "_hf" : "";
      write_pgm(bench::out_dir() + "/" + file + ".pgm",
                tile_images(maps, 5, 5));
    }
    std::printf("\nconductance sheets written to out/fig8a_*.pgm\n");
    std::printf("\nSec. IV-A anchor: the baseline deterministic fp32 row above "
                "is this repo's counterpart of the paper's Diehl-level "
                "baseline (92.2%% at full scale on real MNIST).\n");
  });
}
