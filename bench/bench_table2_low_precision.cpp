// Table II — accuracy (%) for the rounding options across precisions:
// {baseline deterministic, stochastic} x {Q0.2, Q0.4, Q1.7, Q1.15} x
// {truncation, round-to-nearest, stochastic rounding}.
//
// Expected shape (paper): the baseline collapses to near-chance at Q0.2/Q0.4
// (truncation worst, stochastic rounding best) and stays degraded at Q1.7;
// stochastic STDP maintains robust accuracy down to 2 bits with only small
// differences between rounding options.
#include "bench_common.hpp"
#include "pss/io/csv.hpp"

using namespace pss;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "table2_low_precision", [](const Config& args) {
    bench::Scale scale = bench::parse_scale(args);
    if (scale.name == "quick") {
      // 24 cells: keep each affordable.
      scale.neuron_count = 80;
      scale.train_images = 250;
      scale.label_images = 200;
      scale.eval_images = 200;
    }
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);

    bench::print_header(
        "Table II — accuracy (%) for rounding options",
        "deterministic STDP fails at low precision (chance at Q0.2 "
        "truncation); stochastic STDP learns even at 2 bits");

    const std::vector<std::pair<LearningOption, const char*>> precisions = {
        {LearningOption::k2Bit, "Q0.2"},
        {LearningOption::k4Bit, "Q0.4"},
        {LearningOption::k8Bit, "Q1.7"},
        {LearningOption::k16Bit, "Q1.15"},
    };
    const std::vector<std::pair<RoundingMode, const char*>> roundings = {
        {RoundingMode::kTruncate, "truncation"},
        {RoundingMode::kNearest, "nearest"},
        {RoundingMode::kStochastic, "stochastic"},
    };

    CsvWriter csv(bench::out_dir() + "/table2.csv",
                  {"rule", "precision", "rounding", "accuracy"});

    for (const StdpKind kind :
         {StdpKind::kDeterministic, StdpKind::kStochastic}) {
      std::printf("\n%s STDP\n",
                  kind == StdpKind::kDeterministic ? "Baseline (deterministic)"
                                                   : "Stochastic");
      TablePrinter t({"precision", "truncation", "round-to-nearest",
                      "stochastic rounding"});
      for (const auto& [option, pname] : precisions) {
        std::vector<std::string> cells = {pname};
        for (const auto& [mode, mname] : roundings) {
          ExperimentSpec spec = bench::make_spec(scale, kind, option, seed);
          spec.rounding = mode;
          spec.name = std::string(stdp_kind_name(kind)) + " " + pname + " " +
                      mname;
          const ExperimentResult r = run_learning_experiment(spec, mnist);
          cells.push_back(format_fixed(100.0 * r.accuracy, 1));
          csv.row({std::string(stdp_kind_name(kind)), pname, mname,
                   format_fixed(r.accuracy, 4)});
        }
        t.add_row(cells);
      }
      t.print();
    }

    std::printf("\nfp32 reference (no quantization):\n");
    TablePrinter ref({"rule", "accuracy (%)"});
    for (const StdpKind kind :
         {StdpKind::kDeterministic, StdpKind::kStochastic}) {
      ExperimentSpec spec =
          bench::make_spec(scale, kind, LearningOption::kFloat32, seed);
      const ExperimentResult r = run_learning_experiment(spec, mnist);
      ref.add_row({stdp_kind_name(kind), format_fixed(100.0 * r.accuracy, 1)});
    }
    ref.print();
  });
}
