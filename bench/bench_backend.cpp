// Compute-backend comparison: per-kernel and end-to-end timings of the
// `cpu` (reference) vs `cpu_simd` (vectorized fused-step + STDP-row) kernel
// tables, published as pss.metrics.v1 gauges.
//
// Per-kernel section: the two kernels cpu_simd overrides, timed in isolation
// (784 input channels, a burst of active channels stressing the per-row
// conductance gather, a half-stale grid-aligned last-pre-spike vector for
// the STDP row), min-of-repeats timing. Two fused-step regimes:
//  * `lif_fused` — the default 256-neuron geometry keeps the conductance
//    matrix L2-resident, so the timing isolates the compute difference the
//    backends actually have (the vectorized row gather);
//  * `lif_fused_dram` — the paper-scale 1000-neuron matrix streams from
//    DRAM, where both backends saturate memory bandwidth and the expected
//    speedup is ~1.0x. Published so nobody mistakes the headline number for
//    a bandwidth-bound claim.
//
// End-to-end section: the full unsupervised pipeline (train → label → infer)
// through ExperimentSpec with only the backend name swapped.
//
// Hardware-counter profile: after every timed section, an untimed pass
// re-runs the kernels (and one sparse e2e run) with obs::profile_enabled()
// on, so the per-kernel cycles/IPC/cache-miss tables in the
// `<out>.profile.json` sidecar (pss.profile.v1) come from the same code
// paths without the ~µs counter-group reads distorting the published
// timings. Where perf_event_open is blocked (containers) the sidecar
// reports "available": 0 instead of failing.
//
// Arguments: neurons=256 active=256 dram_neurons=1000 dram_active=128
//            repeats=5 iters=200 e2e=1 profile=1 out=BENCH_backend.json
//            seed=3
// The committed repo-root BENCH_backend.json is this bench's output, run from
// the repo root with defaults; refresh it when the kernels change and diff
// with tools/bench_summary.py. tools/bench_compare.py gates it against
// bench/baselines/backend.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/stopwatch.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/config.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"

using namespace pss;

namespace {

/// One backend's kernel playground: a pool with irregular-but-deterministic
/// state on a paper-shaped geometry.
struct Rig {
  std::unique_ptr<Backend> backend;
  std::unique_ptr<StatePool> pool;
  std::vector<ChannelIndex> active;
  StdpUpdater updater{StdpUpdaterConfig{}};
  CounterRng rng{3, 9};

  Rig(const std::string& name, std::size_t neurons, std::size_t channels,
      std::size_t active_count) {
    backend = make_backend(name);
    pool = std::make_unique<StatePool>(backend.get(),
                                       StatePool::Geometry{neurons, channels});
    pool->set_g_bounds(0.0, 1.0);
    SequentialRng init(7);
    for (auto& g : pool->g()) g = init.uniform();
    auto v = pool->membrane();
    auto currents = pool->currents();
    auto last = pool->last_spike();
    for (std::size_t i = 0; i < neurons; ++i) {
      v[i] = -65.0 + 15.0 * init.uniform();
      currents[i] = 4.0 * init.uniform();
      last[i] = kNeverSpiked;
    }
    // Half the channels never fired (the gap-infinite STDP branch), the rest
    // spread over the recent past — the mix a real presentation produces.
    // Spike times land on the dt = 0.5 ms step grid, as the encoders emit
    // them, so rows see repeated gap values (which the cpu_simd kernel's
    // gate memo exploits, exactly as it would in training).
    auto last_pre = pool->last_pre_spike();
    for (std::size_t c = 0; c < channels; ++c) {
      last_pre[c] = (c % 2 == 0)
                        ? kNeverSpiked
                        : 0.5 * std::floor(80.0 * init.uniform());
    }
    const std::size_t stride = std::max<std::size_t>(1, channels / active_count);
    for (std::size_t c = 0; c < channels && active.size() < active_count;
         c += stride) {
      active.push_back(static_cast<ChannelIndex>(c));
    }
  }

  void fused_step(TimeMs now) {
    LifFusedStepArgs args;
    args.params = paper_lif_parameters();
    args.step.state =
        NeuronStateView{pool->membrane(), pool->recovery(), pool->last_spike(),
                        pool->inhibited_until(), pool->spiked()};
    args.step.currents = pool->currents();
    args.step.decay_factor = 0.8;
    args.step.conductance = std::as_const(*pool).g();
    args.step.pre_count = pool->channels();
    args.step.active_pre = active;
    args.step.amplitude = 3.0;
    args.step.now = now;
    args.step.dt = 0.5;
    backend->kernels().lif_step_fused(backend->engine(), args);
  }

  void stdp_row(NeuronIndex post, TimeMs t_post, std::uint64_t counter_base) {
    StdpRowArgs args;
    args.updater = &updater;
    args.row = pool->g_row(post);
    args.last_pre_spike = std::as_const(*pool).last_pre_spike();
    args.t_post = t_post;
    args.rng = &rng;
    args.counter_base = counter_base;
    backend->kernels().stdp_row(backend->engine(), args);
  }
};

/// Seconds per call, min over `repeats` timed blocks of `iters` calls each.
template <typename Fn>
double time_min(std::size_t repeats, std::size_t iters, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    best = std::min(best, sw.seconds() / static_cast<double>(iters));
  }
  return best;
}

void publish_pair(const std::string& kernel, double cpu_s, double simd_s) {
  obs::metrics().gauge("bench.backend." + kernel + ".cpu.ns").set(cpu_s * 1e9);
  obs::metrics()
      .gauge("bench.backend." + kernel + ".cpu_simd.ns")
      .set(simd_s * 1e9);
  obs::metrics().gauge("bench.backend." + kernel + ".speedup")
      .set(cpu_s / simd_s);
  std::printf("  %-14s cpu %9.0f ns   cpu_simd %9.0f ns   speedup %.2fx\n",
              kernel.c_str(), cpu_s * 1e9, simd_s * 1e9, cpu_s / simd_s);
}

/// Wall time charged to each simulation phase during one e2e run, read as
/// deltas of the global phase.*.ns counters WtaNetwork::present maintains.
struct PhaseBreakdown {
  double encode_ns = 0.0;
  double integrate_ns = 0.0;
  double stdp_ns = 0.0;
  double aggregate() const { return encode_ns + integrate_ns + stdp_ns; }
};

double phase_counter(const char* name) {
  return static_cast<double>(obs::metrics().counter(name).value());
}

double run_e2e(const std::string& backend, const LabeledDataset& data,
               std::uint64_t seed, double* accuracy, PhaseBreakdown* phases) {
  ExperimentSpec spec;
  spec.name = "bench_backend_e2e";
  spec.neuron_count = 50;
  spec.train_images = 120;
  spec.label_images = 120;
  spec.eval_images = 120;
  spec.seed = seed;
  spec.backend = backend;
  const double enc0 = phase_counter("phase.encode.ns");
  const double int0 = phase_counter("phase.integrate.ns");
  const double stdp0 = phase_counter("phase.stdp.ns");
  Stopwatch sw;
  const ExperimentResult result = run_learning_experiment(spec, data);
  const double seconds = sw.seconds();
  if (accuracy) *accuracy = result.accuracy;
  if (phases) {
    phases->encode_ns = phase_counter("phase.encode.ns") - enc0;
    phases->integrate_ns = phase_counter("phase.integrate.ns") - int0;
    phases->stdp_ns = phase_counter("phase.stdp.ns") - stdp0;
  }
  return seconds;
}

void publish_e2e(const std::string& backend, double seconds, double accuracy,
                 const PhaseBreakdown& phases) {
  const std::string prefix = "bench.backend.";
  obs::metrics().gauge(prefix + "e2e." + backend + ".seconds").set(seconds);
  obs::metrics().gauge(prefix + "e2e." + backend + ".accuracy").set(accuracy);
  obs::metrics()
      .gauge(prefix + "phase.encode." + backend + ".ns")
      .set(phases.encode_ns);
  obs::metrics()
      .gauge(prefix + "phase.integrate." + backend + ".ns")
      .set(phases.integrate_ns);
  obs::metrics()
      .gauge(prefix + "phase.stdp." + backend + ".ns")
      .set(phases.stdp_ns);
  obs::metrics()
      .gauge(prefix + "phase.aggregate." + backend + ".ns")
      .set(phases.aggregate());
  std::printf("  phases %-10s encode %7.1f ms  integrate %7.1f ms  "
              "stdp %7.1f ms  aggregate %7.1f ms\n",
              backend.c_str(), phases.encode_ns / 1e6,
              phases.integrate_ns / 1e6, phases.stdp_ns / 1e6,
              phases.aggregate() / 1e6);
}

void publish_phase_speedup(const std::string& backend,
                           const PhaseBreakdown& ref,
                           const PhaseBreakdown& other) {
  const std::string prefix = "bench.backend.phase.";
  obs::metrics()
      .gauge(prefix + "encode." + backend + ".speedup")
      .set(ref.encode_ns / other.encode_ns);
  obs::metrics()
      .gauge(prefix + "integrate." + backend + ".speedup")
      .set(ref.integrate_ns / other.integrate_ns);
  obs::metrics()
      .gauge(prefix + "stdp." + backend + ".speedup")
      .set(ref.stdp_ns / other.stdp_ns);
  obs::metrics()
      .gauge(prefix + "aggregate." + backend + ".speedup")
      .set(ref.aggregate() / other.aggregate());
  std::printf("  vs cpu %-10s encode %6.2fx  integrate %6.2fx  "
              "stdp %6.2fx  aggregate %6.2fx\n",
              backend.c_str(), ref.encode_ns / other.encode_ns,
              ref.integrate_ns / other.integrate_ns,
              ref.stdp_ns / other.stdp_ns,
              ref.aggregate() / other.aggregate());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config args = Config::from_args(argc, argv);
    const std::size_t neurons =
        static_cast<std::size_t>(args.get_int("neurons", 256));
    const std::size_t active_count =
        static_cast<std::size_t>(args.get_int("active", 256));
    const std::size_t dram_neurons =
        static_cast<std::size_t>(args.get_int("dram_neurons", 1000));
    const std::size_t dram_active =
        static_cast<std::size_t>(args.get_int("dram_active", 128));
    const std::size_t repeats =
        static_cast<std::size_t>(args.get_int("repeats", 5));
    const std::size_t iters =
        static_cast<std::size_t>(args.get_int("iters", 200));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 3));
    const std::string out = args.get_string("out", "BENCH_backend.json");
    constexpr std::size_t kChannels = kImagePixels;

    obs::set_metrics_enabled(true);

    std::printf("backend comparison: %zu neurons x %zu channels, %zu active, "
                "min of %zu x %zu calls\n",
                neurons, kChannels, active_count, repeats, iters);

    // --- per-kernel -------------------------------------------------------
    Rig cpu("cpu", neurons, kChannels, active_count);
    Rig simd("cpu_simd", neurons, kChannels, active_count);

    const double fused_cpu = time_min(repeats, iters, [&](std::size_t i) {
      cpu.fused_step(0.5 * static_cast<double>(i + 1));
    });
    const double fused_simd = time_min(repeats, iters, [&](std::size_t i) {
      simd.fused_step(0.5 * static_cast<double>(i + 1));
    });
    publish_pair("lif_fused", fused_cpu, fused_simd);

    // Paper-scale fused step: the matrix streams from DRAM and both
    // backends are bandwidth-bound, so this pair is expected near 1.0x.
    {
      Rig cpu_dram("cpu", dram_neurons, kChannels, dram_active);
      Rig simd_dram("cpu_simd", dram_neurons, kChannels, dram_active);
      const double dram_cpu = time_min(repeats, iters, [&](std::size_t i) {
        cpu_dram.fused_step(0.5 * static_cast<double>(i + 1));
      });
      const double dram_simd = time_min(repeats, iters, [&](std::size_t i) {
        simd_dram.fused_step(0.5 * static_cast<double>(i + 1));
      });
      publish_pair("lif_fused_dram", dram_cpu, dram_simd);
      obs::metrics().gauge("bench.backend.dram_neurons")
          .set(static_cast<double>(dram_neurons));
    }

    const std::uint64_t draws_per_row =
        static_cast<std::uint64_t>(kChannels) * StdpUpdater::kDrawsPerEvent;
    const double stdp_cpu = time_min(repeats, iters, [&](std::size_t i) {
      cpu.stdp_row(static_cast<NeuronIndex>(i % neurons),
                   static_cast<double>(i), i * draws_per_row);
    });
    const double stdp_simd = time_min(repeats, iters, [&](std::size_t i) {
      simd.stdp_row(static_cast<NeuronIndex>(i % neurons),
                    static_cast<double>(i), i * draws_per_row);
    });
    publish_pair("stdp_row", stdp_cpu, stdp_simd);

    obs::metrics().gauge("bench.backend.neurons")
        .set(static_cast<double>(neurons));
    obs::metrics().gauge("bench.backend.active_channels")
        .set(static_cast<double>(cpu.active.size()));

    // --- end-to-end -------------------------------------------------------
    if (args.get_bool("e2e", true)) {
      SyntheticConfig synth;
      synth.train_count = 240;
      synth.test_count = 240;
      synth.seed = 7;
      const LabeledDataset data = make_synthetic_digits(synth);
      double acc_cpu = 0.0, acc_simd = 0.0, acc_sparse = 0.0;
      PhaseBreakdown ph_cpu, ph_simd, ph_sparse;
      const double e2e_cpu = run_e2e("cpu", data, seed, &acc_cpu, &ph_cpu);
      const double e2e_simd =
          run_e2e("cpu_simd", data, seed, &acc_simd, &ph_simd);
      const double e2e_sparse =
          run_e2e("cpu_sparse", data, seed, &acc_sparse, &ph_sparse);
      // Legacy pair gauges (the simd comparison the bench started with).
      obs::metrics().gauge("bench.backend.e2e.cpu.seconds").set(e2e_cpu);
      obs::metrics().gauge("bench.backend.e2e.cpu_simd.seconds").set(e2e_simd);
      obs::metrics().gauge("bench.backend.e2e.speedup").set(e2e_cpu / e2e_simd);
      obs::metrics().gauge("bench.backend.e2e.cpu.accuracy").set(acc_cpu);
      obs::metrics()
          .gauge("bench.backend.e2e.cpu_simd.accuracy")
          .set(acc_simd);
      std::printf("  e2e pipeline   cpu %9.2f s    cpu_simd %9.2f s   "
                  "speedup %.2fx  (accuracy %.1f%% vs %.1f%%)\n",
                  e2e_cpu, e2e_simd, e2e_cpu / e2e_simd, 100.0 * acc_cpu,
                  100.0 * acc_simd);
      std::printf("  e2e pipeline   cpu_sparse %6.2f s   speedup %.2fx  "
                  "(accuracy %.1f%%)\n",
                  e2e_sparse, e2e_cpu / e2e_sparse, 100.0 * acc_sparse);
      // Per-phase wall time per backend, and each backend's per-phase
      // speedup against the reference. The sparse backend's acceptance
      // criterion is the encode+integrate+stdp aggregate.
      publish_e2e("cpu", e2e_cpu, acc_cpu, ph_cpu);
      publish_e2e("cpu_simd", e2e_simd, acc_simd, ph_simd);
      publish_e2e("cpu_sparse", e2e_sparse, acc_sparse, ph_sparse);
      publish_phase_speedup("cpu_simd", ph_cpu, ph_simd);
      publish_phase_speedup("cpu_sparse", ph_cpu, ph_sparse);
    }

    // --- hardware-counter profile (untimed pass) --------------------------
    if (args.get_bool("profile", true)) {
      obs::set_profile_enabled(true);
      const std::size_t prof_iters = std::min<std::size_t>(iters, 100);
      for (std::size_t i = 0; i < prof_iters; ++i) {
        const TimeMs t = 0.5 * static_cast<double>(i + 1);
        cpu.fused_step(t);
        simd.fused_step(t);
        cpu.stdp_row(static_cast<NeuronIndex>(i % neurons),
                     static_cast<double>(i), i * draws_per_row);
        simd.stdp_row(static_cast<NeuronIndex>(i % neurons),
                      static_cast<double>(i), i * draws_per_row);
      }
      if (args.get_bool("e2e", true)) {
        // One sparse e2e run fills the per-phase rows (phase.encode /
        // integrate / stdp / homeostasis) and the sparse kernel tags;
        // cpu_sparse because it is the cheapest full pipeline.
        SyntheticConfig synth;
        synth.train_count = 240;
        synth.test_count = 240;
        synth.seed = 7;
        const LabeledDataset data = make_synthetic_digits(synth);
        run_e2e("cpu_sparse", data, seed, nullptr, nullptr);
      }
      obs::set_profile_enabled(false);
      obs::publish_profile_stats();
      std::string profile_out = out;
      const std::string suffix = ".json";
      if (profile_out.size() >= suffix.size() &&
          profile_out.compare(profile_out.size() - suffix.size(),
                              suffix.size(), suffix) == 0) {
        profile_out.resize(profile_out.size() - suffix.size());
      }
      profile_out += ".profile.json";
      obs::write_profile_json(profile_out, "bench_backend");
      std::printf("wrote %s (profile.available=%d)\n", profile_out.c_str(),
                  obs::profile_available() ? 1 : 0);
    }

    obs::write_metrics_json(out, "bench_backend");
    std::printf("wrote %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_backend: %s\n", e.what());
    return 1;
  }
}
