// Shared plumbing for the per-figure/table bench binaries.
//
// Every bench accepts `key=value` arguments; the universal ones:
//   scale=quick|standard|full   experiment size (default quick, minutes;
//                               full approximates the paper's 60k-image runs
//                               and takes hours on one CPU core)
//   dataset=synthetic|real      real requires PSS_MNIST_DIR / PSS_FASHION_DIR
//   seed=<n>
// Each bench prints the paper's rows/series through TablePrinter so output
// is uniform, and (where useful) writes PGM/CSV artifacts into out/.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "pss/common/log.hpp"
#include "pss/data/idx.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/data/synthetic_fashion.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/config.hpp"
#include "pss/io/table.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"

namespace pss::bench {

struct Scale {
  std::string name = "quick";
  std::size_t neuron_count = 100;
  std::size_t train_images = 300;
  std::size_t label_images = 250;
  std::size_t eval_images = 250;
  std::size_t dataset_train = 600;
  std::size_t dataset_test = 600;
};

inline Scale parse_scale(const Config& args) {
  const std::string name = args.get_string("scale", "quick");
  Scale s;
  s.name = name;
  if (name == "quick") {
    // defaults above
  } else if (name == "standard") {
    s.neuron_count = 200;
    s.train_images = 1000;
    s.label_images = 500;
    s.eval_images = 500;
    s.dataset_train = 1200;
    s.dataset_test = 1200;
  } else if (name == "full") {
    // The paper's protocol: 1000 neurons, 60k training images, label on the
    // first 1000 test images, infer on the remaining 9000.
    s.neuron_count = 1000;
    s.train_images = 60000;
    s.label_images = 1000;
    s.eval_images = 9000;
    s.dataset_train = 60000;
    s.dataset_test = 10000;
  } else {
    throw Error("unknown scale '" + name + "' (quick|standard|full)");
  }
  return s;
}

/// Loads MNIST(-like) data: real IDX files when requested/available, the
/// synthetic substitute otherwise (substitution documented in DESIGN.md).
inline LabeledDataset load_dataset(const std::string& which, const Scale& scale,
                                   std::uint64_t seed) {
  if (auto real = load_real_dataset_from_env(which)) return std::move(*real);
  SyntheticConfig cfg;
  cfg.train_count = scale.dataset_train;
  cfg.test_count = scale.dataset_test;
  cfg.seed = seed;
  return which == "fashion-mnist" ? make_synthetic_fashion(cfg)
                                  : make_synthetic_digits(cfg);
}

inline ExperimentSpec make_spec(const Scale& scale, StdpKind kind,
                                LearningOption option, std::uint64_t seed) {
  ExperimentSpec spec;
  spec.kind = kind;
  spec.option = option;
  spec.neuron_count = scale.neuron_count;
  spec.train_images = scale.train_images;
  spec.label_images = scale.label_images;
  spec.eval_images = scale.eval_images;
  spec.seed = seed;
  spec.name = std::string(stdp_kind_name(kind)) + " " +
              learning_option_name(option);
  return spec;
}

/// Output directory for PGM/CSV artifacts (created on demand).
inline std::string out_dir() {
  const std::string dir = "out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Records a scalar bench result as the gauge "bench.<name>". Every bench
/// publishes through the registry so all BENCH_*.json files share one schema
/// (pss.metrics.v1) instead of each bench hand-rolling its own JSON.
inline void record(const std::string& name, double value) {
  obs::metrics().gauge("bench." + name).set(value);
}

/// Times a section and records "bench.<name>.seconds" on stop (or
/// destruction). Replaces the per-bench Stopwatch + manual bookkeeping.
class RecordedTimer {
 public:
  explicit RecordedTimer(std::string name)
      : name_(std::move(name)), t0_(obs::monotonic_ns()) {}

  /// Stops the timer, records the gauge, and returns elapsed seconds.
  double stop() {
    if (!stopped_) {
      seconds_ = static_cast<double>(obs::monotonic_ns() - t0_) * 1e-9;
      record(name_ + ".seconds", seconds_);
      stopped_ = true;
    }
    return seconds_;
  }

  ~RecordedTimer() { stop(); }

  RecordedTimer(const RecordedTimer&) = delete;
  RecordedTimer& operator=(const RecordedTimer&) = delete;

 private:
  std::string name_;
  std::uint64_t t0_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

/// Dumps the registry (counters + gauges + histograms, including every
/// record() call so far) to out/BENCH_<bench_name>.json and returns the path.
inline std::string write_bench_record(const std::string& bench_name) {
  const std::string path = out_dir() + "/BENCH_" + bench_name + ".json";
  obs::write_metrics_json(path, bench_name);
  return path;
}

/// Dumps the hardware-counter profile to out/BENCH_<bench_name>.profile.json
/// (pss.profile.v1) and mirrors the rows into the registry first, so a
/// subsequent write_bench_record() carries them too. Always writes: where
/// perf_event_open is blocked (containers) the sidecar reports
/// "available": 0 with an empty kernel table instead of failing.
inline std::string write_profile_record(const std::string& bench_name) {
  obs::publish_profile_stats();
  const std::string path =
      out_dir() + "/BENCH_" + bench_name + ".profile.json";
  obs::write_profile_json(path, bench_name);
  return path;
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline int bench_main(int argc, char** argv, const std::string& bench_name,
                      const std::function<void(const Config&)>& body) {
  try {
    const Config args = Config::from_args(argc, argv);
    if (!args.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);
    // Benches publish results through the metrics registry (record() /
    // write_bench_record()), so collection is on by default here.
    obs::set_metrics_enabled(args.get_bool("obs", true));
    // Hardware-counter profiling is opt-in (`profile=1`): every profiled
    // launch costs two counter-group reads (~µs syscalls), which would
    // distort the very timings the bench is recording. The profile sidecar
    // is still always written — with profiling off (or perf unavailable) it
    // documents that fact instead of silently not existing.
    obs::set_profile_enabled(args.get_bool("profile", false));
    body(args);
    write_profile_record(bench_name);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}

}  // namespace pss::bench
