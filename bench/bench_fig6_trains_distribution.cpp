// Fig. 6 — high-frequency and low-precision operation:
//   (a) input spike trains at low (1-22 Hz / 500 ms) and high (5-78 Hz /
//       100 ms) frequency: the digit's dark region is more distinct in the
//       high-frequency raster;
//   (b) conductance distribution of all synapses after Q1.7 learning:
//       deterministic STDP drops a large portion of synapses to the minimal
//       conductance; stochastic STDP keeps a usable distribution.
#include "bench_common.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/stats/histogram.hpp"
#include "pss/stats/raster.hpp"

using namespace pss;

namespace {

void show_raster(const Image& img, double f_min, double f_max,
                 TimeMs duration) {
  const PixelFrequencyMap map(f_min, f_max);
  std::vector<double> rates;
  map.frequencies(img.span(), rates);
  PoissonEncoder enc(rates.size(), 77);
  enc.set_rates(rates);
  SpikeRaster raster(rates.size(), duration);
  std::vector<ChannelIndex> active;
  std::uint64_t spikes = 0;
  for (StepIndex s = 0; static_cast<double>(s) * 1.0 < duration; ++s) {
    enc.active_channels(s, 1.0, active);
    for (ChannelIndex c : active) raster.record(c, static_cast<TimeMs>(s));
    spikes += active.size();
  }
  std::printf("%u-%u Hz, %.0f ms, %llu input spikes (rows = pixel channels, "
              "subsampled):\n",
              static_cast<unsigned>(f_min), static_cast<unsigned>(f_max),
              duration, static_cast<unsigned long long>(spikes));
  std::fputs(raster.to_string(72, 20).c_str(), stdout);
}

Histogram conductance_histogram(const ExperimentSpec& spec,
                                const LabeledDataset& data) {
  WtaNetwork net(spec.network_config());
  UnsupervisedTrainer trainer(net, spec.trainer_config());
  trainer.train(data.train.head(spec.train_images));
  Histogram h(0.0, 1.0, 16);
  h.add_all(net.conductance().to_vector());
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig6_trains_distribution", [](const Config& args) {
    const bench::Scale scale = bench::parse_scale(args);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);

    bench::print_header(
        "Fig. 6a — input spike trains at low vs high frequency",
        "the written digit's region is more distinct at high frequency "
        "(more information-carrying spikes per unit time)");

    const Image& sample = mnist.train[0];
    std::printf("sample digit label: %d\n\n", sample.label);
    show_raster(sample, 1.0, 22.0, 500.0);
    std::printf("\n");
    show_raster(sample, 5.0, 78.0, 100.0);

    bench::print_header(
        "Fig. 6b — conductance distribution after Q1.7 learning",
        "deterministic STDP drops a large portion of synapses to minimal "
        "conductance; stochastic STDP retains a broad distribution");

    for (const StdpKind kind :
         {StdpKind::kStochastic, StdpKind::kDeterministic}) {
      ExperimentSpec spec =
          bench::make_spec(scale, kind, LearningOption::k8Bit, seed);
      // Stochastic rounding: the only rounding option under which the
      // deterministic rule's quantized updates keep moving across the whole
      // range (Table II's best deterministic column) — with truncation or
      // nearest it simply stalls where |ΔG| < 1/2^(n+1), which hides the
      // distribution collapse the paper's Fig. 6b shows.
      spec.rounding = RoundingMode::kStochastic;
      const Histogram h = conductance_histogram(spec, mnist);
      std::printf("\n%s STDP, Q1.7 (%llu synapses): bottom-bin %.1f%%, "
                  "top-bin %.1f%%, mean %.3f\n",
                  stdp_kind_name(kind),
                  static_cast<unsigned long long>(h.total()),
                  100.0 * h.bottom_fraction(), 100.0 * h.top_fraction(),
                  h.mean());
      std::fputs(h.to_string(48).c_str(), stdout);
    }
  });
}
