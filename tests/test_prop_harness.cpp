// The property harness tested against itself: Source primitives and tape
// replay, shrinker termination/determinism/minimality, check() case
// accounting and discard budget, env-var repro plumbing — and the two
// detection drills the harness exists for: a deliberately broken STDP bound
// and a deliberate one-ULP cross-backend divergence must both be caught
// with a one-line PSS_PROP_SEED/PSS_PROP_CASE recipe that reproduces the
// failure deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/prop/check.hpp"
#include "pss/prop/generators.hpp"
#include "pss/prop/shrink.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/synapse/parameter_registry.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {
namespace {

using prop::CheckOptions;
using prop::CheckResult;
using prop::Source;
using prop::Tape;

CheckOptions quiet_options(std::uint32_t cases = 60) {
  CheckOptions options;
  options.cases = cases;
  options.read_env = false;  // self-tests pin their own seeds
  return options;
}

// ---------------------------------------------------------------------------
// Source primitives.

TEST(PropSource, ZeroTapeYieldsMinimalValues) {
  Source s(Tape{});  // replay of the empty tape: every draw is the minimum
  EXPECT_EQ(s.bits(1000), 0u);
  EXPECT_EQ(s.range(7, 19), 7u);
  EXPECT_EQ(s.unit(), 0.0);
  EXPECT_EQ(s.real(2.5, 9.0), 2.5);
  EXPECT_FALSE(s.boolean(0.99));
  EXPECT_EQ(s.choose({10, 20, 30}), 10);
}

TEST(PropSource, GenerationIsDeterministicPerSeedAndCase) {
  for (std::uint64_t k : {0ull, 1ull, 17ull}) {
    Source a = prop::case_source("p", 99, k);
    Source b = prop::case_source("p", 99, k);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(a.bits(1u << 20), b.bits(1u << 20));
    }
    EXPECT_EQ(a.tape(), b.tape());
  }
  // Different case index → different tape.
  Source a = prop::case_source("p", 99, 0);
  Source b = prop::case_source("p", 99, 1);
  for (int i = 0; i < 50; ++i) {
    a.bits(1u << 20);
    b.bits(1u << 20);
  }
  EXPECT_NE(a.tape(), b.tape());
}

TEST(PropSource, ReplayReproducesGeneratedValues) {
  Source gen = prop::case_source("replay", 7, 3);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(gen.real(-3.0, 12.0));
  const bool flag = gen.boolean(0.4);
  const std::uint64_t pick = gen.range(5, 500);

  Source replay(gen.tape());
  for (double v : values) {
    EXPECT_EQ(replay.real(-3.0, 12.0), v);  // bitwise
  }
  EXPECT_EQ(replay.boolean(0.4), flag);
  EXPECT_EQ(replay.range(5, 500), pick);
}

TEST(PropSource, ReplayClampsOutOfBoundChoices) {
  Source s(Tape{999});
  EXPECT_EQ(s.bits(10), 10u);  // clamped, still a valid draw
}

// ---------------------------------------------------------------------------
// Shrinker.

TEST(PropShrink, TerminatesAndMinimizesCountingPredicate) {
  // Fails while the tape holds at least 3 values ≥ 5. Minimal failing tape:
  // exactly [5, 5, 5].
  const auto still_fails = [](const Tape& tape) {
    int big = 0;
    for (std::uint64_t v : tape) big += v >= 5 ? 1 : 0;
    return big >= 3;
  };
  Tape noisy;
  for (std::uint64_t i = 0; i < 40; ++i) noisy.push_back(3 + 7 * (i % 5));
  ASSERT_TRUE(still_fails(noisy));
  prop::ShrinkStats stats;
  const Tape shrunk = prop::shrink_tape(noisy, still_fails, 10000, &stats);
  EXPECT_EQ(shrunk, (Tape{5, 5, 5}));
  EXPECT_GT(stats.evaluations, 0u);
  EXPECT_TRUE(still_fails(shrunk));
}

TEST(PropShrink, DeterministicForAFixedInput) {
  const auto still_fails = [](const Tape& tape) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : tape) sum += v;
    return sum >= 100;
  };
  Tape input;
  for (std::uint64_t i = 0; i < 30; ++i) input.push_back(17 + i);
  const Tape a = prop::shrink_tape(input, still_fails, 5000);
  const Tape b = prop::shrink_tape(input, still_fails, 5000);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(still_fails(a));
}

TEST(PropShrink, RespectsEvaluationBudget) {
  std::uint32_t calls = 0;
  const auto still_fails = [&](const Tape&) {
    ++calls;
    return true;  // everything fails — shrinks all the way to empty
  };
  prop::ShrinkStats stats;
  Tape input(64, 1000);
  prop::shrink_tape(input, still_fails, 25, &stats);
  EXPECT_LE(stats.evaluations, 25u);
  EXPECT_EQ(calls, stats.evaluations);
}

// ---------------------------------------------------------------------------
// check() runner.

TEST(PropCheck, PassingPropertyRunsAllCases) {
  const CheckResult r = prop::check(
      "always_passes", [](Source& s) { s.bits(100); }, quiet_options(40));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cases_run, 40u);
  EXPECT_TRUE(r.report().empty());
}

TEST(PropCheck, FailingPropertyShrinksAndReportsRepro) {
  const auto property = [](Source& s) {
    // Fails when the generated vector contains a value above 900.
    const std::uint64_t n = s.range(1, 30);
    for (std::uint64_t i = 0; i < n; ++i) {
      PSS_PROP_ASSERT(s.bits(1000) <= 900, "generated value above 900");
    }
  };
  const CheckResult r = prop::check("finds_big_value", property,
                                    quiet_options(200));
  ASSERT_TRUE(r.failed);
  EXPECT_FALSE(r.message.empty());
  // Shrinking drives the case to the minimal shape: one-element vector
  // holding the smallest failing value.
  ASSERT_LE(r.shrunk_tape.size(), 2u);
  EXPECT_EQ(r.shrunk_tape.back(), 901u);
  // The one-line recipe names the exact seed/case pair.
  EXPECT_NE(r.report().find("PSS_PROP_SEED="), std::string::npos);
  EXPECT_NE(r.report().find("PSS_PROP_CASE="), std::string::npos);

  // ...and the recipe actually reproduces: replaying (seed, case) fails
  // identically, twice.
  const CheckResult replay1 =
      prop::run_case("finds_big_value", property, r.seed, r.failing_case);
  const CheckResult replay2 =
      prop::run_case("finds_big_value", property, r.seed, r.failing_case);
  ASSERT_TRUE(replay1.failed);
  EXPECT_EQ(replay1.message, r.message);
  EXPECT_EQ(replay1.failing_tape, r.failing_tape);
  EXPECT_EQ(replay1.shrunk_tape, r.shrunk_tape);
  EXPECT_EQ(replay2.shrunk_tape, replay1.shrunk_tape);
}

TEST(PropCheck, DiscardBudgetGuardsAgainstOverRejectingGenerators) {
  const CheckResult r = prop::check(
      "discards_everything", [](Source&) { prop::discard("nope"); },
      quiet_options(10));
  EXPECT_TRUE(r.failed);
  EXPECT_TRUE(r.gave_up);
  EXPECT_NE(r.report().find("gave up"), std::string::npos);
}

TEST(PropCheck, UnhandledExceptionsCountAsFailures) {
  const CheckResult r = prop::check(
      "throws_logic_error",
      [](Source& s) {
        if (s.bits(1) == 1) throw std::logic_error("boom");
      },
      quiet_options(50));
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.message.find("boom"), std::string::npos);
}

TEST(PropCheck, EnvVarsReplayASingleCase) {
  const auto property = [](Source& s) {
    PSS_PROP_ASSERT(s.bits(999) % 50 != 17, "hit the magic residue");
  };
  CheckOptions options;
  options.cases = 500;
  options.read_env = true;
  const CheckResult first = prop::check("env_replay", property, options);
  ASSERT_TRUE(first.failed) << "expected the 2% residue to surface in 500 cases";

  ASSERT_EQ(setenv("PSS_PROP_SEED", std::to_string(first.seed).c_str(), 1), 0);
  ASSERT_EQ(setenv("PSS_PROP_CASE",
                   std::to_string(first.failing_case).c_str(), 1),
            0);
  const CheckResult replay = prop::check("env_replay", property, options);
  unsetenv("PSS_PROP_SEED");
  unsetenv("PSS_PROP_CASE");
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.failing_case, first.failing_case);
  EXPECT_EQ(replay.failing_tape, first.failing_tape);
  EXPECT_EQ(replay.message, first.message);
}

// ---------------------------------------------------------------------------
// Generator sanity: generated structures satisfy their own contracts and
// replay bitwise from the tape.

TEST(PropGenerators, WtaConfigsAreConstructibleAndReplayable) {
  for (std::uint64_t k = 0; k < 25; ++k) {
    Source s = prop::case_source("gen_wta", 11, k);
    const WtaConfig config = prop::gen_wta_config(s, "cpu");
    EXPECT_GE(config.neuron_count, 2u);
    EXPECT_LE(config.neuron_count, 14u);
    EXPECT_GT(config.init_g_hi, config.init_g_lo);
    // Tape replay regenerates the identical config.
    Source replay(s.tape());
    const WtaConfig again = prop::gen_wta_config(replay, "cpu");
    EXPECT_EQ(config.neuron_count, again.neuron_count);
    EXPECT_EQ(config.input_channels, again.input_channels);
    EXPECT_EQ(config.seed, again.seed);
    EXPECT_EQ(config.spike_amplitude, again.spike_amplitude);  // bitwise
    // The config builds a working updater.
    const StdpUpdater updater(config.stdp);
    EXPECT_GT(updater.effective_g_max(), 0.0);
  }
}

TEST(PropGenerators, QFormatsAreValidAndSpanTable2) {
  bool saw_q0_2 = false;
  bool saw_q1_15 = false;
  for (std::uint64_t k = 0; k < 60; ++k) {
    Source s = prop::case_source("gen_qformat", 5, k);
    const QFormat format = prop::gen_qformat(s);
    EXPECT_GE(format.fraction_bits(), 1);
    EXPECT_LE(format.total_bits(), 31);
    if (format == q0_2()) saw_q0_2 = true;
    if (format == q1_15()) saw_q1_15 = true;
  }
  EXPECT_TRUE(saw_q0_2);
  EXPECT_TRUE(saw_q1_15);
}

TEST(PropGenerators, LayersSpecsParseAndFaultSpecsArm) {
  const CheckResult specs = prop::check(
      "valid_layers_specs_parse",
      [](Source& s) {
        const std::string spec = prop::gen_layers_spec(s);
        const WtaConfig base = WtaConfig::from_table1(
            LearningOption::kFloat32, StdpKind::kStochastic, 10);
        const graph::GraphConfig config =
            graph::graph_config_from_spec(spec, base);
        PSS_PROP_ASSERT(!config.layers.empty(), "parsed spec has layers");
      },
      quiet_options(80));
  EXPECT_TRUE(specs.ok()) << specs.report();

  const CheckResult faults = prop::check(
      "valid_fault_specs_arm",
      [](Source& s) {
        robust::FaultInjector injector;
        injector.arm_from_spec(prop::gen_fault_spec(s));
        PSS_PROP_ASSERT(!injector.armed_points().empty(),
                        "spec armed at least one point");
      },
      quiet_options(80));
  EXPECT_TRUE(faults.ok()) << faults.report();
}

// ---------------------------------------------------------------------------
// Detection drill 1 (acceptance criterion): a deliberately broken STDP
// bound is caught, with a repro recipe that replays deterministically.

TEST(PropDetection, BrokenStdpBoundIsCaughtWithReproducibleRepro) {
  // The sabotaged updater step: correct result, then an overshoot added on
  // potentiations — modelling a bound bug a hot-path rewrite could
  // introduce. The property asserts G ∈ [g_min, effective_g_max].
  const auto property = [](Source& s) {
    const StdpUpdaterConfig config = prop::gen_stdp_config(s);
    const StdpUpdater updater(config);
    const double g =
        s.real(config.magnitude.g_min, updater.effective_g_max());
    const double gap = s.real(0.0, 3.0 * config.det_window_ms);
    double next = updater.update_at_post_spike(g, gap, s.unit(), s.unit(),
                                               s.unit());
    if (next > g) next += 0.25;  // the deliberate bound break
    PSS_PROP_ASSERT(next >= config.magnitude.g_min &&
                        next <= updater.effective_g_max() + 1e-12,
                    "conductance escaped [G_min, G_max]");
  };
  const CheckResult r =
      prop::check("sabotaged_stdp_bound", property, quiet_options(300));
  ASSERT_TRUE(r.failed) << "harness failed to catch the broken bound";
  ASSERT_FALSE(r.repro().empty());
  // The printed single-line recipe, as the acceptance criterion requires:
  std::printf("caught broken STDP bound; repro: %s\n", r.repro().c_str());
  EXPECT_NE(r.repro().find("PSS_PROP_SEED="), std::string::npos);

  // Deterministic reproduction from the recipe alone.
  const CheckResult replay =
      prop::run_case("sabotaged_stdp_bound", property, r.seed,
                     r.failing_case);
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.message, r.message);
  EXPECT_EQ(replay.shrunk_tape, r.shrunk_tape);
}

// ---------------------------------------------------------------------------
// Detection drill 2 (acceptance criterion): a one-ULP divergence in the
// cpu_simd conv kernel's results is caught by the differential property.

TEST(PropDetection, OneUlpBackendDivergenceIsCaughtWithReproducibleRepro) {
  const auto property = [](Source& s) {
    // Small generated conv workload, run on cpu and cpu_simd.
    const std::size_t kernel = s.range(2, 3);
    const std::size_t in_h = s.range(kernel, 6);
    const std::size_t in_w = s.range(kernel, 6);
    const std::size_t filters = s.range(1, 3);
    const std::size_t out_h = in_h - kernel + 1;
    const std::size_t out_w = in_w - kernel + 1;
    std::vector<double> filter_taps(filters * kernel * kernel);
    for (double& w : filter_taps) w = s.real(-1.0, 1.0);
    std::vector<ChannelIndex> active;
    for (std::size_t u = 0; u < in_h * in_w; ++u) {
      if (s.boolean(0.4)) active.push_back(static_cast<ChannelIndex>(u));
    }
    const double amplitude = s.real(0.5, 3.0);

    Engine engine(1);
    std::vector<double> reference(filters * out_h * out_w, 0.0);
    std::vector<double> simd(reference);
    for (auto [name, currents] :
         {std::pair<const char*, std::vector<double>*>{"cpu", &reference},
          {"cpu_simd", &simd}}) {
      ConvAccumulateArgs args;
      args.filters = filter_taps;
      args.filter_count = filters;
      args.in_channels = 1;
      args.kernel = kernel;
      args.stride = 1;
      args.in_width = in_w;
      args.in_height = in_h;
      args.out_width = out_w;
      args.out_height = out_h;
      args.active_pre = active;
      args.amplitude = amplitude;
      args.decay_factor = 0.0;
      args.currents = *currents;
      make_backend(name)->kernels().conv_accumulate(engine, args);
    }
    // The deliberate divergence: nudge one cpu_simd output by one ULP.
    if (!simd.empty() && simd[0] != 0.0) {
      simd[0] = std::nextafter(simd[0], 1e308);
    }
    PSS_PROP_ASSERT(
        std::memcmp(reference.data(), simd.data(),
                    reference.size() * sizeof(double)) == 0,
        "conv_accumulate diverged between cpu and cpu_simd");
  };
  const CheckResult r = prop::check("sabotaged_simd_divergence", property,
                                    quiet_options(150));
  ASSERT_TRUE(r.failed) << "harness failed to catch the one-ULP divergence";
  std::printf("caught one-ULP backend divergence; repro: %s\n",
              r.repro().c_str());
  EXPECT_NE(r.repro().find("PSS_PROP_CASE="), std::string::npos);

  const CheckResult replay = prop::run_case("sabotaged_simd_divergence",
                                            property, r.seed,
                                            r.failing_case);
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.message, r.message);
  EXPECT_EQ(replay.failing_tape, r.failing_tape);
}

}  // namespace
}  // namespace pss
