// Verifies the Table I registry against the paper, cell by cell.
#include <gtest/gtest.h>

#include "pss/common/error.hpp"
#include "pss/synapse/parameter_registry.hpp"

namespace pss {
namespace {

TEST(Table1, HasAllSixRows) {
  EXPECT_EQ(table1_rows().size(), 6u);
}

TEST(Table1, TwoBitRow) {
  const Table1Row& r = table1_row(LearningOption::k2Bit);
  EXPECT_FALSE(r.magnitude.has_value()) << "alpha/beta blank at 2 bit";
  EXPECT_DOUBLE_EQ(r.gate.gamma_pot, 0.2);
  EXPECT_DOUBLE_EQ(r.gate.tau_pot, 20.0);
  EXPECT_DOUBLE_EQ(r.gate.gamma_dep, 0.2);
  EXPECT_DOUBLE_EQ(r.gate.tau_dep, 10.0);
  ASSERT_TRUE(r.format.has_value());
  EXPECT_EQ(r.format->name(), "Q0.2");
  EXPECT_DOUBLE_EQ(r.f_input_max_hz, 22.0);
  EXPECT_DOUBLE_EQ(r.f_input_min_hz, 1.0);
}

TEST(Table1, FourBitRow) {
  const Table1Row& r = table1_row(LearningOption::k4Bit);
  EXPECT_FALSE(r.magnitude.has_value());
  EXPECT_DOUBLE_EQ(r.gate.gamma_pot, 0.3);
  EXPECT_DOUBLE_EQ(r.gate.tau_pot, 30.0);
  EXPECT_DOUBLE_EQ(r.gate.gamma_dep, 0.3);
  EXPECT_EQ(r.format->name(), "Q0.4");
}

TEST(Table1, EightBitRow) {
  const Table1Row& r = table1_row(LearningOption::k8Bit);
  EXPECT_DOUBLE_EQ(r.gate.gamma_pot, 0.5);
  EXPECT_DOUBLE_EQ(r.gate.gamma_dep, 0.5);
  EXPECT_DOUBLE_EQ(r.gate.tau_dep, 10.0);
  EXPECT_EQ(r.format->name(), "Q1.7");
}

TEST(Table1, SixteenBitRowHasMagnitudes) {
  const Table1Row& r = table1_row(LearningOption::k16Bit);
  ASSERT_TRUE(r.magnitude.has_value());
  EXPECT_DOUBLE_EQ(r.magnitude->alpha_p, 0.01);
  EXPECT_DOUBLE_EQ(r.magnitude->beta_p, 3.0);
  EXPECT_DOUBLE_EQ(r.magnitude->alpha_d, 0.005);
  EXPECT_DOUBLE_EQ(r.magnitude->beta_d, 3.0);
  EXPECT_DOUBLE_EQ(r.magnitude->g_max, 1.0);
  EXPECT_DOUBLE_EQ(r.magnitude->g_min, 0.0);
  EXPECT_DOUBLE_EQ(r.gate.gamma_pot, 0.9);
  EXPECT_EQ(r.format->name(), "Q1.15");
}

TEST(Table1, HighFrequencyRowExtendsRange) {
  // Sec. IV-C: short-term behaviour = higher tau_pot, lower tau_dep; the
  // operating point moves to 5-78 Hz at 100 ms per image.
  const Table1Row& r = table1_row(LearningOption::kHighFrequency);
  EXPECT_DOUBLE_EQ(r.gate.gamma_pot, 0.3);
  EXPECT_DOUBLE_EQ(r.gate.tau_pot, 80.0);
  EXPECT_DOUBLE_EQ(r.gate.gamma_dep, 0.2);
  EXPECT_DOUBLE_EQ(r.gate.tau_dep, 5.0);
  EXPECT_DOUBLE_EQ(r.f_input_max_hz, 78.0);
  EXPECT_DOUBLE_EQ(r.f_input_min_hz, 5.0);
  EXPECT_DOUBLE_EQ(r.t_learn_ms, 100.0);
  EXPECT_FALSE(r.format.has_value());
  const Table1Row& base = table1_row(LearningOption::k16Bit);
  EXPECT_GT(r.gate.tau_pot, base.gate.tau_pot);
  EXPECT_LT(r.gate.tau_dep, base.gate.tau_dep);
}

TEST(Table1, Fp32RowSharesSixteenBitParameters) {
  const Table1Row& fp = table1_row(LearningOption::kFloat32);
  const Table1Row& b16 = table1_row(LearningOption::k16Bit);
  EXPECT_FALSE(fp.format.has_value());
  ASSERT_TRUE(fp.magnitude.has_value());
  EXPECT_DOUBLE_EQ(fp.magnitude->alpha_p, b16.magnitude->alpha_p);
  EXPECT_DOUBLE_EQ(fp.gate.gamma_pot, b16.gate.gamma_pot);
}

TEST(Table1, BaselineRowsUse500msLearning) {
  for (const auto option :
       {LearningOption::k2Bit, LearningOption::k4Bit, LearningOption::k8Bit,
        LearningOption::k16Bit, LearningOption::kFloat32}) {
    EXPECT_DOUBLE_EQ(table1_row(option).t_learn_ms, 500.0)
        << learning_option_name(option);
  }
}

TEST(Table1, NamesMatchEnum) {
  EXPECT_STREQ(learning_option_name(LearningOption::k2Bit), "2 bit");
  EXPECT_STREQ(learning_option_name(LearningOption::kHighFrequency),
               "high frequency");
  for (const auto& row : table1_rows()) {
    EXPECT_EQ(row.name, learning_option_name(row.option));
  }
}

}  // namespace
}  // namespace pss
