// Tests for Q-format fixed point and the three rounding options of
// paper Sec. III-C / eq. 8.
#include <gtest/gtest.h>

#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/fixedpoint/qformat.hpp"
#include "pss/fixedpoint/quantizer.hpp"

namespace pss {
namespace {

TEST(QFormat, PaperFormatsHaveExpectedWidths) {
  EXPECT_EQ(q0_2().total_bits(), 2);
  EXPECT_EQ(q0_4().total_bits(), 4);
  EXPECT_EQ(q1_7().total_bits(), 8);
  EXPECT_EQ(q1_15().total_bits(), 16);
}

TEST(QFormat, ResolutionIsPowerOfTwo) {
  EXPECT_DOUBLE_EQ(q0_2().resolution(), 0.25);
  EXPECT_DOUBLE_EQ(q0_4().resolution(), 0.0625);
  EXPECT_DOUBLE_EQ(q1_7().resolution(), 1.0 / 128.0);
  EXPECT_DOUBLE_EQ(q1_15().resolution(), 1.0 / 32768.0);
}

TEST(QFormat, MaxValueMatchesLevels) {
  // Q0.2: levels {0, .25, .5, .75}.
  EXPECT_DOUBLE_EQ(q0_2().max_value(), 0.75);
  EXPECT_EQ(q0_2().level_count(), 4u);
  // Q1.7: 256 levels up to 255/128.
  EXPECT_DOUBLE_EQ(q1_7().max_value(), 255.0 / 128.0);
  EXPECT_EQ(q1_7().level_count(), 256u);
}

TEST(QFormat, ParseRoundTripsName) {
  for (const char* name : {"Q0.2", "Q0.4", "Q1.7", "Q1.15", "Q3.5"}) {
    EXPECT_EQ(QFormat::parse(name).name(), name);
  }
}

TEST(QFormat, ParseRejectsGarbage) {
  EXPECT_THROW(QFormat::parse("1.7"), Error);
  EXPECT_THROW(QFormat::parse("Q17"), Error);
  EXPECT_THROW(QFormat::parse("Qx.y"), Error);
  EXPECT_THROW(QFormat::parse(""), Error);
}

TEST(QFormat, ConstructorRejectsBadWidths) {
  EXPECT_THROW(QFormat(-1, 4), Error);
  EXPECT_THROW(QFormat(0, 0), Error);
  EXPECT_THROW(QFormat(20, 20), Error);
}

TEST(QFormat, RepresentableExactlyOnGrid) {
  const QFormat q = q0_2();
  EXPECT_TRUE(q.representable(0.0));
  EXPECT_TRUE(q.representable(0.25));
  EXPECT_TRUE(q.representable(0.75));
  EXPECT_FALSE(q.representable(0.3));
  EXPECT_FALSE(q.representable(1.0));   // above max
  EXPECT_FALSE(q.representable(-0.25));
}

TEST(QFormat, FloorCodeAndFromCodeRoundTrip) {
  const QFormat q = q1_7();
  for (std::uint32_t code = 0; code < q.level_count(); ++code) {
    EXPECT_EQ(q.floor_code(q.from_code(code)), code);
  }
}

TEST(QFormat, FloorCodeClampsOutOfRange) {
  const QFormat q = q0_2();
  EXPECT_EQ(q.floor_code(-1.0), 0u);
  EXPECT_EQ(q.floor_code(100.0), 3u);
}

TEST(Quantizer, TruncationRoundsDown) {
  const Quantizer q(q0_2(), RoundingMode::kTruncate);
  EXPECT_DOUBLE_EQ(q.quantize(0.49), 0.25);
  EXPECT_DOUBLE_EQ(q.quantize(0.2499), 0.0);
  EXPECT_DOUBLE_EQ(q.quantize(0.74), 0.5);
}

TEST(Quantizer, NearestRoundsHalfUp) {
  const Quantizer q(q0_2(), RoundingMode::kNearest);
  EXPECT_DOUBLE_EQ(q.quantize(0.12), 0.0);
  EXPECT_DOUBLE_EQ(q.quantize(0.125), 0.25);  // half rounds up
  EXPECT_DOUBLE_EQ(q.quantize(0.13), 0.25);
  EXPECT_DOUBLE_EQ(q.quantize(0.37), 0.25);
  EXPECT_DOUBLE_EQ(q.quantize(0.38), 0.5);
}

TEST(Quantizer, StochasticUsesTheDraw) {
  const Quantizer q(q0_2(), RoundingMode::kStochastic);
  // 0.3 is 20% of the way from 0.25 to 0.5: P_up = 0.2 (eq. 8).
  EXPECT_DOUBLE_EQ(q.quantize(0.3, /*u=*/0.19), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(0.3, /*u=*/0.21), 0.25);
  EXPECT_DOUBLE_EQ(q.round_up_probability(0.3), 0.2);
}

TEST(Quantizer, StochasticIsUnbiasedInExpectation) {
  const Quantizer q(q0_4(), RoundingMode::kStochastic);
  const double value = 0.3;  // between 0.25 and 0.3125
  SequentialRng rng(123);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += q.quantize(value, rng.uniform());
  EXPECT_NEAR(sum / n, value, 0.001)
      << "eq. 8 must preserve the value in expectation";
}

TEST(Quantizer, ClampsToRange) {
  for (const RoundingMode mode :
       {RoundingMode::kTruncate, RoundingMode::kNearest,
        RoundingMode::kStochastic}) {
    const Quantizer q(q0_2(), mode);
    EXPECT_DOUBLE_EQ(q.quantize(-0.5, 0.99), 0.0);
    EXPECT_DOUBLE_EQ(q.quantize(9.0, 0.99), 0.75);
  }
}

TEST(Quantizer, RoundUpProbabilityDeterministicModes) {
  const Quantizer trunc(q0_2(), RoundingMode::kTruncate);
  const Quantizer nearest(q0_2(), RoundingMode::kNearest);
  EXPECT_DOUBLE_EQ(trunc.round_up_probability(0.3), 0.0);
  EXPECT_DOUBLE_EQ(nearest.round_up_probability(0.3), 0.0);
  EXPECT_DOUBLE_EQ(nearest.round_up_probability(0.4), 1.0);
}

TEST(LowPrecisionDeltaG, PaperRule) {
  // <= 8 bits: delta = 1/2^n; above: float delta (nullopt).
  ASSERT_TRUE(low_precision_delta_g(q0_2()).has_value());
  EXPECT_DOUBLE_EQ(*low_precision_delta_g(q0_2()), 0.25);
  EXPECT_DOUBLE_EQ(*low_precision_delta_g(q1_7()), 1.0 / 128.0);
  EXPECT_FALSE(low_precision_delta_g(q1_15()).has_value());
}

// Property sweep over all paper formats and rounding modes.
class QuantizerProperty
    : public ::testing::TestWithParam<std::tuple<int, RoundingMode>> {
 protected:
  QFormat format() const {
    switch (std::get<0>(GetParam())) {
      case 0: return q0_2();
      case 1: return q0_4();
      case 2: return q1_7();
      default: return q1_15();
    }
  }
};

TEST_P(QuantizerProperty, OutputAlwaysOnGrid) {
  const Quantizer q(format(), std::get<1>(GetParam()));
  SequentialRng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-0.2, 2.2);
    const double out = q.quantize(v, rng.uniform());
    EXPECT_TRUE(format().representable(out)) << "value " << v << " -> " << out;
  }
}

TEST_P(QuantizerProperty, QuantizationIsIdempotent) {
  const Quantizer q(format(), std::get<1>(GetParam()));
  SequentialRng rng(6);
  for (int i = 0; i < 500; ++i) {
    const double once = q.quantize(rng.uniform(0.0, 1.0), rng.uniform());
    EXPECT_DOUBLE_EQ(q.quantize(once, rng.uniform()), once);
  }
}

TEST_P(QuantizerProperty, ErrorBoundedByOneStep) {
  const Quantizer q(format(), std::get<1>(GetParam()));
  SequentialRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.0, format().max_value());
    const double out = q.quantize(v, rng.uniform());
    EXPECT_LE(std::abs(out - v), format().resolution());
  }
}

TEST_P(QuantizerProperty, MonotoneNondecreasing) {
  const Quantizer q(format(), std::get<1>(GetParam()));
  // For a fixed draw u, quantization must be monotone in the input.
  for (double u : {0.0, 0.3, 0.7, 0.999}) {
    double prev = -1.0;
    for (double v = 0.0; v <= format().max_value(); v += 0.001) {
      const double out = q.quantize(v, u);
      EXPECT_GE(out, prev);
      prev = out;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatsAllModes, QuantizerProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(RoundingMode::kTruncate,
                                         RoundingMode::kNearest,
                                         RoundingMode::kStochastic)));

}  // namespace
}  // namespace pss
