// Tests for the spike-train analysis module.
#include <gtest/gtest.h>

#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/stats/spiketrain.hpp"

namespace pss {
namespace {

TEST(IsiStatistics, RegularTrainHasZeroCv) {
  const std::vector<TimeMs> train = {10, 20, 30, 40, 50};
  const IsiStats s = isi_statistics(train);
  EXPECT_EQ(s.interval_count, 4u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.stddev_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 10.0);
}

TEST(IsiStatistics, FewSpikesYieldEmptyStats) {
  EXPECT_EQ(isi_statistics({}).interval_count, 0u);
  const std::vector<TimeMs> one = {5.0};
  EXPECT_EQ(isi_statistics(one).interval_count, 0u);
}

TEST(IsiStatistics, PoissonTrainHasCvNearOne) {
  // Generate an exponential-ISI train.
  SequentialRng rng(3);
  std::vector<TimeMs> train;
  TimeMs t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    t += -50.0 * std::log(1.0 - rng.uniform());  // mean ISI 50 ms
    train.push_back(t);
  }
  const IsiStats s = isi_statistics(train);
  EXPECT_NEAR(s.mean_ms, 50.0, 3.0);
  EXPECT_NEAR(s.cv, 1.0, 0.08);
}

TEST(IsiStatistics, RejectsUnsortedInput) {
  const std::vector<TimeMs> bad = {10, 5, 20};
  EXPECT_THROW(isi_statistics(bad), Error);
}

TEST(FanoFactor, PoissonNearOneRegularNearZero) {
  SequentialRng rng(5);
  std::vector<TimeMs> poisson;
  TimeMs t = 0.0;
  while (t < 100000.0) {
    t += -20.0 * std::log(1.0 - rng.uniform());
    poisson.push_back(t);
  }
  EXPECT_NEAR(fano_factor(poisson, 100000.0, 500.0), 1.0, 0.25);

  std::vector<TimeMs> regular;
  for (TimeMs rt = 20.0; rt < 100000.0; rt += 20.0) regular.push_back(rt);
  EXPECT_LT(fano_factor(regular, 100000.0, 500.0), 0.1);
}

TEST(FanoFactor, EmptyTrainIsZero) {
  EXPECT_DOUBLE_EQ(fano_factor({}, 1000.0, 100.0), 0.0);
}

TEST(RateCurve, CountsPerBinConvertToHz) {
  const std::vector<TimeMs> train = {10, 20, 30, 150};
  const auto curve = rate_curve(train, 200.0, 100.0);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0], 30.0);  // 3 spikes / 100 ms
  EXPECT_DOUBLE_EQ(curve[1], 10.0);
}

TEST(VanRossum, IdenticalTrainsHaveZeroDistance) {
  const std::vector<TimeMs> a = {10, 50, 90};
  EXPECT_NEAR(van_rossum_distance(a, a, 10.0), 0.0, 1e-9);
}

TEST(VanRossum, DistanceGrowsWithMissingSpikes) {
  const std::vector<TimeMs> full = {10, 50, 90};
  const std::vector<TimeMs> missing_one = {10, 50};
  const std::vector<TimeMs> missing_two = {10};
  const double d1 = van_rossum_distance(full, missing_one, 10.0);
  const double d2 = van_rossum_distance(full, missing_two, 10.0);
  EXPECT_GT(d1, 0.1);
  EXPECT_GT(d2, d1);
}

TEST(VanRossum, DistanceGrowsWithTemporalShift) {
  const std::vector<TimeMs> a = {100.0};
  const std::vector<TimeMs> small_shift = {102.0};
  const std::vector<TimeMs> large_shift = {140.0};
  const double d_small = van_rossum_distance(a, small_shift, 10.0);
  const double d_large = van_rossum_distance(a, large_shift, 10.0);
  EXPECT_GT(d_small, 0.0);
  EXPECT_GT(d_large, d_small);
}

TEST(VanRossum, SymmetricInArguments) {
  const std::vector<TimeMs> a = {10, 30, 80};
  const std::vector<TimeMs> b = {15, 60};
  EXPECT_DOUBLE_EQ(van_rossum_distance(a, b, 12.0),
                   van_rossum_distance(b, a, 12.0));
}

TEST(IsiStatistics, DistinguishesIzhikevichFiringPatterns) {
  // Integration with the neuron models: a chattering neuron's burst ISIs
  // are far more irregular than a regular-spiking neuron's tonic train.
  auto train_of = [](const IzhikevichParameters& params) {
    double v = params.v_init;
    double u = params.b * params.v_init;
    std::vector<TimeMs> times;
    for (int t = 0; t < 3000; ++t) {
      if (izhikevich_step(params, v, u, 10.0, 1.0) && t > 200) {
        times.push_back(static_cast<TimeMs>(t));
      }
    }
    return times;
  };
  const auto rs = train_of(izhikevich_regular_spiking());
  const auto ch = train_of(izhikevich_chattering());
  ASSERT_GT(rs.size(), 5u);
  ASSERT_GT(ch.size(), 5u);
  const double cv_rs = isi_statistics(rs).cv;
  const double cv_ch = isi_statistics(ch).cv;
  EXPECT_LT(cv_rs, 0.3) << "tonic regular spiking";
  EXPECT_GT(cv_ch, cv_rs + 0.3) << "bursting yields bimodal ISIs";
}

TEST(Coincidence, ExactAndWindowedMatches) {
  const std::vector<TimeMs> a = {10, 20, 30};
  const std::vector<TimeMs> b = {10, 22, 300};
  EXPECT_DOUBLE_EQ(coincidence_fraction(a, b, 0.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(coincidence_fraction(a, b, 2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(coincidence_fraction({}, b, 5.0), 0.0);
}

}  // namespace
}  // namespace pss
