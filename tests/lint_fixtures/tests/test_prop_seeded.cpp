// Proves the prop-seed rule also covers the tests/test_prop_*.cpp scope,
// not just src/pss/prop/. Never compiled. Expected: 1 prop-seed finding.
#include <cstdint>

#include "pss/common/rng.hpp"

namespace pss {

void property_with_private_rng() {
  CounterRng rng(7, 0);  // violation: the Source must supply all draws
  (void)rng;
}

}  // namespace pss
