// Fixture: a clean numeric-path file. Mentions of banned constructs in
// comments and string literals must NOT fire any rule:
//   rand() srand() std::random_device malloc(64) new double[3]
#include <string>

// for (auto& kv : some_unordered_map) { ... }  — commented-out iteration
const char* clean_description() {
  return "this string mentions rand() and malloc( and std::mt19937";
}

double clean_sum(double a, double b) {
  const std::string note = "new delete free( calloc(";
  return a + b + static_cast<double>(note.size()) * 0.0;
}
