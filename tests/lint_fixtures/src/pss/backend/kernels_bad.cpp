// Fixture: <random> engines/distributions in a kernel TU (Philox-only
// territory) plus a raw malloc.
#include <cstdlib>
#include <random>

double bad_kernel_rng(unsigned long seed_value) {
  std::mt19937_64 engine(seed_value);  // line 7: kernel-rng
  std::normal_distribution<double> dist(0.0, 1.0);  // line 8: kernel-rng
  return dist(engine);
}

void* bad_kernel_alloc(unsigned n) {
  return malloc(n);  // line 13: raw-alloc
}
