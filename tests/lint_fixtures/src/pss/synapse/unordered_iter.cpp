// Fixture: iteration over unordered containers in a numeric path — the
// order feeds the sums, so results depend on the hash implementation.
#include <cstddef>
#include <string>
#include <unordered_map>

double bad_unordered_sum() {
  std::unordered_map<std::string, double> weights;
  weights["a"] = 0.5;
  double sum = 0.0;
  for (const auto& kv : weights) {  // line 12: unordered-iteration
    sum += kv.second;
  }
  return sum;
}

std::size_t bad_unordered_begin() {
  std::unordered_map<int, double> table{{1, 2.0}};
  auto it = table.begin();  // line 19: unordered-iteration
  return static_cast<std::size_t>(it->first);
}
