// Seeded violations for the prop-seed rule: property code that constructs
// its own literal-seeded RNGs (or a <random> engine) instead of drawing
// from the harness's (seed, case) Philox stream. Never compiled — scanned
// by tools/lint/pss_lint.py via tests/test_pss_lint.py. Expected: 3
// prop-seed findings.
#include <cstdint>
#include <random>

#include "pss/common/rng.hpp"

namespace pss::prop {

void bad_literal_counter() {
  CounterRng rng(0x1234, 7);  // violation: literal-seeded CounterRng
  (void)rng;
}

void bad_literal_sequential() {
  SequentialRng rng(42);  // violation: literal-seeded SequentialRng
  (void)rng;
}

double bad_std_engine() {
  // A comment mentioning CounterRng(123) must NOT fire; code must.
  std::mt19937 gen(99);  // violation: <random> engine in property code
  return static_cast<double>(gen());
}

}  // namespace pss::prop
