// A valid, audited prop-seed suppression: must land in the report's
// `suppressed` list, not `violations`. Never compiled.
#include <cstdint>

#include "pss/common/rng.hpp"

namespace pss::prop {

void golden_vector_check() {
  // Pinning a published test vector legitimately needs a fixed key.
  CounterRng rng(0xdeadbeef, 0);  // pss-lint: allow(prop-seed)
  (void)rng;
}

}  // namespace pss::prop
