// Seeded violations for the raw-socket-syscall rule: talking to the BSD
// socket API directly instead of going through pss::serve::net. Both forms
// must fire: the header include and a ::-qualified syscall.
#include <sys/socket.h>

int open_raw_listener() {
  const int fd = ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  ::listen(fd, 4);
  return fd;
}

// Not violations: a qualified member definition and a wrapper call both
// look socket-ish but must stay clean.
struct FakeNet {
  int connect(int a, int b);
};
int FakeNet::connect(int a, int b) { return a + b; }
