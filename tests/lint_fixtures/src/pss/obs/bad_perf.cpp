// Seeded violation for the raw-perf-syscall rule: opening a counter fd
// directly instead of going through the pss/obs/perf.cpp wrapper.
#include <sys/syscall.h>
#include <unistd.h>

struct perf_event_attr;

long open_counter(perf_event_attr* attr) {
  return syscall(SYS_perf_event_open, attr, 0, -1, -1, 0);
}

long open_counter_nr(perf_event_attr* attr) {
  return syscall(__NR_perf_event_open, attr, 0, -1, -1, 0);
}
