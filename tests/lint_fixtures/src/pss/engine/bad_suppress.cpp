// Fixture: a suppression naming an unknown rule is itself an error (and
// does not silence the underlying finding).
double* bad_suppression(unsigned n) {
  return new double[n];  // pss-lint: allow(not-a-rule)
}
