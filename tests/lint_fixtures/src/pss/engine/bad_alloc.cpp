// Fixture: raw allocation in a hot path (engine/).
#include <cstdlib>

double* bad_new(unsigned n) {
  return new double[n];  // line 5: raw-alloc
}

void bad_free(void* p) {
  free(p);  // line 9: raw-alloc
}
