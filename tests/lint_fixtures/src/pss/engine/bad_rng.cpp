// Fixture: every banned entropy source in one numeric-path file.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_libc_rng() {
  return static_cast<unsigned>(rand());  // line 8: nondeterministic-rng
}

unsigned bad_hardware_entropy() {
  std::random_device rd;  // line 12: nondeterministic-rng
  return rd();
}

long bad_time_seed() {
  return time(nullptr);  // line 17: nondeterministic-rng
}

long bad_chrono_seed() {
  // nondeterministic-rng: chrono-derived value flowing into a seed.
  const auto seed = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<long>(seed.count());
}
