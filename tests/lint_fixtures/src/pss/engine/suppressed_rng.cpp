// Fixture: a violation carrying a valid suppression — must land in the
// report's "suppressed" list, not "violations".
#include <random>

unsigned suppressed_entropy() {
  std::random_device rd;  // pss-lint: allow(nondeterministic-rng)
  return rd();
}
