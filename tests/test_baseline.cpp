// Tests for the CARLsim-style baseline simulator substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "pss/baseline/coba_synapse.hpp"
#include "pss/baseline/event_queue.hpp"
#include "pss/baseline/izhi_network.hpp"
#include "pss/baseline/trace_stdp.hpp"
#include "pss/common/error.hpp"

namespace pss {
namespace {

TEST(SpikeEventQueue, DeliversAtScheduledDelay) {
  SpikeEventQueue q(5);
  q.schedule(42, 2);
  EXPECT_TRUE(q.due().empty());
  q.advance();
  EXPECT_TRUE(q.due().empty());
  q.advance();
  ASSERT_EQ(q.due().size(), 1u);
  EXPECT_EQ(q.due()[0], 42u);
}

TEST(SpikeEventQueue, SlotClearedAfterAdvance) {
  SpikeEventQueue q(3);
  q.schedule(1, 1);
  q.advance();
  EXPECT_EQ(q.due().size(), 1u);
  q.advance();
  EXPECT_TRUE(q.due().empty());
  // The wrapped-around slot must be clean for reuse.
  q.schedule(2, 3);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(SpikeEventQueue, RejectsOutOfRangeDelay) {
  SpikeEventQueue q(3);
  EXPECT_THROW(q.schedule(0, 0), Error);
  EXPECT_THROW(q.schedule(0, 4), Error);
}

TEST(CobaState, ExcitatoryCurrentPullsTowardReversal) {
  CobaState coba(1, ReceptorParams{}, true);
  coba.deliver(0, 1.0, /*inhibitory=*/false);
  std::vector<double> currents(1, 0.0);
  const std::vector<double> v = {-65.0};
  coba.currents_and_decay(v, 1.0, currents);
  // I = g * (E_exc - v) = 1 * (0 - (-65)) = +65.
  EXPECT_DOUBLE_EQ(currents[0], 65.0);
}

TEST(CobaState, InhibitoryCurrentPullsTowardEInh) {
  CobaState coba(1, ReceptorParams{}, true);
  coba.deliver(0, 1.0, /*inhibitory=*/true);
  std::vector<double> currents(1, 0.0);
  const std::vector<double> v = {-50.0};
  coba.currents_and_decay(v, 1.0, currents);
  // I = g * (E_inh - v) = 1 * (-70 + 50) = -20.
  EXPECT_DOUBLE_EQ(currents[0], -20.0);
}

TEST(CobaState, ConductanceDecaysExponentially) {
  ReceptorParams p;
  p.tau_exc_ms = 5.0;
  CobaState coba(1, p, true);
  coba.deliver(0, 1.0, false);
  std::vector<double> currents(1, 0.0);
  const std::vector<double> v = {0.0};
  coba.currents_and_decay(v, 1.0, currents);  // decays after use
  EXPECT_NEAR(coba.g_exc()[0], std::exp(-0.2), 1e-12);
}

TEST(CobaState, CubaModeInjectsPlainCurrent) {
  CobaState cuba(2, ReceptorParams{}, /*conductance_based=*/false);
  cuba.deliver(0, 3.0, false);
  cuba.deliver(1, 2.0, true);
  std::vector<double> currents(2, 0.0);
  const std::vector<double> v = {-65.0, -65.0};
  cuba.currents_and_decay(v, 1.0, currents);
  EXPECT_DOUBLE_EQ(currents[0], 3.0);
  EXPECT_DOUBLE_EQ(currents[1], -2.0);
}

TEST(CobaState, ResetClearsConductance) {
  CobaState coba(1, ReceptorParams{}, true);
  coba.deliver(0, 1.0, false);
  coba.reset();
  EXPECT_DOUBLE_EQ(coba.g_exc()[0], 0.0);
}

TEST(TraceStdp, TracesJumpAndDecay) {
  TraceStdp stdp(2, 2, TraceStdpParams{});
  stdp.on_pre_spike(0);
  EXPECT_DOUBLE_EQ(stdp.pre_trace()[0], 1.0);
  stdp.decay(20.0);  // one tau
  EXPECT_NEAR(stdp.pre_trace()[0], std::exp(-1.0), 1e-12);
}

TEST(TraceStdp, PotentiationProportionalToPreTrace) {
  TraceStdpParams p;
  p.a_plus = 0.1;
  TraceStdp stdp(1, 1, p);
  stdp.on_pre_spike(0);
  stdp.decay(10.0);
  const double expected = 0.1 * std::exp(-0.5);
  EXPECT_NEAR(stdp.potentiation_for(0), expected, 1e-12);
  EXPECT_NEAR(stdp.apply_potentiation(0.5, 0), 0.5 + expected, 1e-12);
}

TEST(TraceStdp, DepressionClampsAtWMin) {
  TraceStdpParams p;
  p.a_minus = 1.0;
  TraceStdp stdp(1, 1, p);
  stdp.on_post_spike(0);
  EXPECT_DOUBLE_EQ(stdp.apply_depression(0.2, 0), 0.0);
}

TEST(TraceStdp, PotentiationClampsAtWMax) {
  TraceStdpParams p;
  p.a_plus = 1.0;
  TraceStdp stdp(1, 1, p);
  stdp.on_pre_spike(0);
  EXPECT_DOUBLE_EQ(stdp.apply_potentiation(0.9, 0), 1.0);
}

BaselineConfig quiet_config() {
  BaselineConfig cfg;
  cfg.seed = 5;
  return cfg;
}

TEST(BaselineNetwork, GroupBookkeeping) {
  BaselineNetwork net(quiet_config());
  const int a = net.add_group("exc", 80, izhikevich_regular_spiking());
  const int b = net.add_group("inh", 20, izhikevich_fast_spiking(), true);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(net.group_size(a), 80u);
  EXPECT_EQ(net.group_size(b), 20u);
  EXPECT_EQ(net.neuron_count(), 100u);
  EXPECT_THROW(net.group_size(7), Error);
}

TEST(BaselineNetwork, PoissonDriveProducesActivity) {
  BaselineNetwork net(quiet_config());
  const int g = net.add_group("exc", 50, izhikevich_regular_spiking());
  net.set_poisson_drive(g, 100.0, 15.0);
  const auto r = net.run(500.0);
  EXPECT_GT(r.total_spikes, 0u);
  EXPECT_GT(r.mean_rate_hz, 0.5);
}

TEST(BaselineNetwork, NoDriveNoSpikes) {
  BaselineNetwork net(quiet_config());
  net.add_group("exc", 20, izhikevich_regular_spiking());
  const auto r = net.run(300.0);
  EXPECT_EQ(r.total_spikes, 0u);
}

TEST(BaselineNetwork, RecurrentExcitationAmplifiesActivity) {
  auto run_with_weight = [](double w) {
    BaselineNetwork net(BaselineConfig{});
    const int g = net.add_group("exc", 60, izhikevich_regular_spiking());
    SequentialRng rng(8);
    net.connect(g, g,
                connect_random(
                    60, 60, 0.05,
                    [w](NeuronIndex, NeuronIndex) { return w; }, rng));
    net.set_poisson_drive(g, 40.0, 12.0);
    return net.run(500.0).total_spikes;
  };
  EXPECT_GT(run_with_weight(0.4), run_with_weight(0.0));
}

TEST(BaselineNetwork, InhibitoryGroupSuppressesActivity) {
  auto run_with_inhibition = [](bool inhibit) {
    // CUBA mode: inhibitory weight subtracts current outright, so the
    // comparison is free of conductance-reversal effects near E_inh.
    BaselineConfig cfg;
    cfg.conductance_based = false;
    BaselineNetwork net(cfg);
    const int e = net.add_group("exc", 50, izhikevich_regular_spiking());
    const int i = net.add_group("inh", 50, izhikevich_fast_spiking(), true);
    SequentialRng rng(9);
    if (inhibit) {
      net.connect(i, e,
                  connect_random(
                      50, 50, 0.3,
                      [](NeuronIndex, NeuronIndex) { return 1.5; }, rng));
    }
    net.set_poisson_drive(e, 60.0, 12.0);
    net.set_poisson_drive(i, 60.0, 12.0);
    const auto r = net.run(500.0);
    std::uint64_t exc_spikes = 0;
    for (std::size_t n = 0; n < 50; ++n) exc_spikes += r.per_neuron_spikes[n];
    return exc_spikes;
  };
  EXPECT_LT(run_with_inhibition(true), run_with_inhibition(false));
}

TEST(BaselineNetwork, DelaysPostponeDelivery) {
  // A single feed-forward synapse with a long delay: the downstream neuron
  // fires later than with a short delay.
  auto first_downstream_spike = [](double delay_ms) {
    BaselineNetwork net(BaselineConfig{});
    const int src = net.add_group("src", 1, izhikevich_chattering());
    const int dst = net.add_group("dst", 1, izhikevich_regular_spiking());
    net.connect(src, dst, {{0, 0, 30.0, delay_ms}});
    net.set_poisson_drive(src, 500.0, 20.0);
    const auto r = net.run(300.0);
    for (const auto& [t, n] : r.raster) {
      if (n == 1) return t;
    }
    return -1.0;
  };
  const double fast = first_downstream_spike(1.0);
  const double slow = first_downstream_spike(40.0);
  ASSERT_GT(fast, 0.0);
  ASSERT_GT(slow, 0.0);
  EXPECT_GT(slow, fast + 20.0);
}

TEST(BaselineNetwork, TraceStdpChangesWeights) {
  BaselineNetwork net(quiet_config());
  const int g = net.add_group("exc", 30, izhikevich_regular_spiking());
  SequentialRng rng(10);
  const int conn = net.connect(
      g, g,
      connect_random(
          30, 30, 0.2, [](NeuronIndex, NeuronIndex) { return 0.5; }, rng));
  net.enable_stdp(conn, TraceStdpParams{});
  net.set_poisson_drive(g, 80.0, 15.0);
  net.run(500.0);
  bool changed = false;
  for (std::size_t k = 0; k < net.connection_count(conn); ++k) {
    if (net.weight(conn, k) != 0.5) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(BaselineNetwork, DeterministicAcrossRuns) {
  auto run_once = [] {
    BaselineNetwork net(quiet_config());
    const int g = net.add_group("exc", 40, izhikevich_regular_spiking());
    SequentialRng rng(11);
    net.connect(g, g,
                connect_random(
                    40, 40, 0.05,
                    [](NeuronIndex, NeuronIndex) { return 0.5; }, rng));
    net.set_poisson_drive(g, 60.0, 14.0);
    return net.run(400.0).per_neuron_spikes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(BaselineNetwork, CannotModifyAfterRun) {
  BaselineNetwork net(quiet_config());
  const int g = net.add_group("exc", 10, izhikevich_regular_spiking());
  net.set_poisson_drive(g, 50.0, 10.0);
  net.run(50.0);
  EXPECT_THROW(net.add_group("late", 5, izhikevich_regular_spiking()), Error);
  EXPECT_THROW(net.connect(g, g, {{0, 0, 1.0, 1.0}}), Error);
}

TEST(BaselineNetwork, StatePersistsAcrossRuns) {
  BaselineNetwork net(quiet_config());
  const int g = net.add_group("exc", 20, izhikevich_regular_spiking());
  net.set_poisson_drive(g, 80.0, 15.0);
  const auto r1 = net.run(300.0);
  const auto r2 = net.run(300.0);
  EXPECT_GT(r1.total_spikes, 0u);
  EXPECT_GT(r2.total_spikes, 0u);
}

}  // namespace
}  // namespace pss
