// Negative-path coverage for the shared front-end option layer: config
// parsing must fail loudly on typos (unknown keys, duplicates, bare `key=`)
// instead of silently running with defaults, and the failure message must
// point at the likely fix ("did you mean 'backend'?").
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pss/common/error.hpp"
#include "pss/io/config.hpp"
#include "tools/run_options.hpp"

using namespace pss;

namespace {

Config config_from(std::initializer_list<const char*> kvs) {
  std::vector<const char*> argv = {"test_options"};
  argv.insert(argv.end(), kvs.begin(), kvs.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data(), 1);
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(OptionsNegative, UnknownKeySuggestsNearestKnownKey) {
  const Config cfg = config_from({"bakend=cpu"});
  const std::string msg =
      error_message([&] { tools::require_known_keys(cfg); });
  EXPECT_NE(msg.find("unknown config key 'bakend'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'backend'?"), std::string::npos) << msg;
}

TEST(OptionsNegative, UnknownKeyFarFromEverythingGetsNoSuggestion) {
  const Config cfg = config_from({"zzqqzz=1"});
  const std::string msg =
      error_message([&] { tools::require_known_keys(cfg); });
  EXPECT_NE(msg.find("unknown config key 'zzqqzz'"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
}

TEST(OptionsNegative, ToolSpecificExtraKeysAreAccepted) {
  const Config cfg = config_from({"seed=3", "maps=out/x.pgm"});
  EXPECT_THROW(tools::require_known_keys(cfg), Error);
  EXPECT_NO_THROW(tools::require_known_keys(cfg, {"maps"}));
}

TEST(OptionsNegative, EverySharedKeyIsAcceptedWithoutExtras) {
  Config cfg;
  for (const std::string& key : tools::shared_config_keys()) {
    cfg.set(key, "1");
  }
  EXPECT_NO_THROW(tools::require_known_keys(cfg));
}

TEST(OptionsNegative, DuplicateKeyOnCommandLineIsRejected) {
  const std::string msg =
      error_message([] { config_from({"seed=1", "seed=2"}); });
  EXPECT_NE(msg.find("duplicate config key 'seed'"), std::string::npos) << msg;
}

TEST(OptionsNegative, EmptyValueIsRejected) {
  const std::string msg = error_message([] { config_from({"seed="}); });
  EXPECT_NE(msg.find("config key 'seed' has an empty value"),
            std::string::npos)
      << msg;
}

TEST(OptionsNegative, DuplicateKeyInConfigFileIsRejected) {
  const std::string path = testing::TempDir() + "/pss_dup_key.cfg";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "neurons=100\n# comment line\nneurons=200\n";
  }
  const std::string msg =
      error_message([&] { Config::from_file(path); });
  EXPECT_NE(msg.find("duplicate config key 'neurons'"), std::string::npos)
      << msg;
}

TEST(OptionsNegative, EmptyValueInConfigFileIsRejected) {
  const std::string path = testing::TempDir() + "/pss_empty_value.cfg";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "workers=\n";
  }
  const std::string msg =
      error_message([&] { Config::from_file(path); });
  EXPECT_NE(msg.find("config key 'workers' has an empty value"),
            std::string::npos)
      << msg;
}

TEST(OptionsNegative, BackendTypoGetsSuggestion) {
  const Config cfg = config_from({"backend=cpu_simdd"});
  const std::string msg = error_message(
      [&] { tools::spec_from_config(cfg, "test_options"); });
  EXPECT_NE(msg.find("unknown backend 'cpu_simdd'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'cpu_simd'?"), std::string::npos) << msg;
}

TEST(OptionsNegative, BackendFarFromEverythingStillListsKnown) {
  const Config cfg = config_from({"backend=tpu9999"});
  const std::string msg = error_message(
      [&] { tools::spec_from_config(cfg, "test_options"); });
  EXPECT_NE(msg.find("unknown backend 'tpu9999'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("known:"), std::string::npos) << msg;
}

TEST(OptionsPositive, ValidConfigStillBuildsASpec) {
  const Config cfg = config_from(
      {"kind=deterministic", "option=8bit", "rounding=trunc", "neurons=40",
       "train=10", "label=5", "eval=5", "seed=7", "backend=cpu"});
  EXPECT_NO_THROW(tools::require_known_keys(cfg));
  const ExperimentSpec spec = tools::spec_from_config(cfg, "test_options");
  EXPECT_EQ(spec.neuron_count, 40u);
  EXPECT_EQ(spec.backend, "cpu");
  EXPECT_EQ(spec.seed, 7u);
}

// --- layers= spec grammar (graph_config_from_options) -----------------------

std::string layers_error(const std::string& spec) {
  const Config cfg = config_from({("layers=" + spec).c_str()});
  return error_message(
      [&] { tools::graph_config_from_options(cfg, WtaConfig{}); });
}

TEST(OptionsLayers, UnknownLayerKindGetsSuggestion) {
  const std::string msg = layers_error("pol:window=2;wta:neurons=10");
  EXPECT_NE(msg.find("unknown layer kind 'pol'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'pool'?"), std::string::npos) << msg;
}

TEST(OptionsLayers, UnknownLayerKeyGetsSuggestion) {
  const std::string msg = layers_error("wta:nurons=10");
  EXPECT_NE(msg.find("unknown key 'nurons' in 'wta' layer"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("did you mean 'neurons'?"), std::string::npos) << msg;
}

TEST(OptionsLayers, BadIntegerIsRejected) {
  const std::string msg = layers_error("wta:neurons=ten");
  EXPECT_NE(msg.find("bad integer 'ten'"), std::string::npos) << msg;
}

TEST(OptionsLayers, TrailingGarbageOnNumberIsRejected) {
  const std::string msg = layers_error("wta:neurons=10,gain=1.5x");
  EXPECT_NE(msg.find("bad number '1.5x'"), std::string::npos) << msg;
}

TEST(OptionsLayers, PoolAfterWtaIsRejected) {
  const std::string msg = layers_error("wta:neurons=10;pool:window=2");
  EXPECT_NE(msg.find("'pool' must precede the WTA blocks"), std::string::npos)
      << msg;
}

TEST(OptionsLayers, MissingWtaBlockIsRejected) {
  const std::string msg = layers_error("conv:filters=4,kernel=5");
  EXPECT_NE(msg.find("at least one 'wta' block is required"),
            std::string::npos)
      << msg;
}

TEST(OptionsLayers, ReadoutMustBeLast) {
  const std::string msg = layers_error("readout:theta=1;wta:neurons=10");
  EXPECT_NE(msg.find("'readout' must be the last layer"), std::string::npos)
      << msg;
}

TEST(OptionsLayers, EncodeMustBeFirst) {
  const std::string msg = layers_error("wta:neurons=10;encode:peak=100");
  EXPECT_NE(msg.find("'encode' must be the first layer"), std::string::npos)
      << msg;
}

TEST(OptionsLayers, LayersKeyTypoSuggestsLayers) {
  const Config cfg = config_from({"layer=wta:neurons=10"});
  const std::string msg =
      error_message([&] { tools::require_known_keys(cfg); });
  EXPECT_NE(msg.find("unknown config key 'layer'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'layers'?"), std::string::npos) << msg;
}

TEST(OptionsLayers, AbsentLayersKeyYieldsSingleWtaGraph) {
  const Config cfg = config_from({"seed=3"});
  WtaConfig base;
  base.neuron_count = 17;
  const pss::graph::GraphConfig graph =
      tools::graph_config_from_options(cfg, base);
  EXPECT_TRUE(graph.single_wta());
  ASSERT_EQ(graph.layers.size(), 1u);
  EXPECT_EQ(graph.layers[0].wta.neurons, 17u);
}

TEST(OptionsLayers, ValidStackedSpecParses) {
  const Config cfg = config_from(
      {"layers=encode:temporal=diff;conv:filters=6,kernel=5,bank=gabor;"
       "pool:window=2;wta:neurons=40"});
  const pss::graph::GraphConfig graph =
      tools::graph_config_from_options(cfg, WtaConfig{});
  EXPECT_FALSE(graph.single_wta());
  EXPECT_TRUE(graph.encode.temporal_diff);
  EXPECT_EQ(graph.layers.size(), 3u);
}

TEST(OptionsPositive, CrossSourceOverrideStillWorksViaSet) {
  // pss_run merges file + CLI by calling set() per key — that path must stay
  // overwrite-capable even though one source rejects duplicates.
  Config cfg = config_from({"seed=1"});
  cfg.set("seed", "2");
  EXPECT_EQ(cfg.get_int("seed", 0), 2);
}

}  // namespace
