// Fault-tolerance tests (pss/robust/ + hardened engine/IO paths): CRC32,
// fault-injection registry semantics, checkpoint format robustness (golden
// corruption matrix), bitwise checkpoint/resume for the sequential and
// batched trainers, worker-failure surfacing and transient-fault retries in
// BatchRunner/ThreadPool, divergence guards, and the synaptic fault models.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/engine/thread_pool.hpp"
#include "pss/io/config.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/robust/checkpoint.hpp"
#include "pss/robust/crc32.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/robust/guards.hpp"
#include "pss/robust/synaptic_faults.hpp"

namespace pss {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// XORs one byte of a file in place (corruption-matrix helper).
void flip_byte(const std::string& path, std::uint64_t offset,
               unsigned char mask = 0xFF) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

/// Overwrites a little-endian u64 field of a file in place.
void patch_u64(const std::string& path, std::uint64_t offset,
               std::uint64_t value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Every fault-armed test runs against the process-wide injector, so clear
/// it on both sides to keep tests order-independent.
class RobustTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kError);
    robust::faults().clear();
  }
  void TearDown() override { robust::faults().clear(); }
};

using Crc32Test = RobustTest;
using FaultInjectorTest = RobustTest;
using ConfigStrict = RobustTest;
using SnapshotRobust = RobustTest;
using CheckpointTest = RobustTest;
using ResumeTest = RobustTest;
using BatchFaults = RobustTest;
using PoolFaults = RobustTest;
using GuardsTest = RobustTest;
using SynapticFaults = RobustTest;

WtaConfig tiny_config(std::uint64_t seed = 7) {
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 12);
  cfg.seed = seed;
  return cfg;
}

TrainerConfig fast_trainer() {
  TrainerConfig tc;
  tc.t_learn_ms = 150.0;
  return tc;
}

// ---------------------------------------------------------------------------
// CRC32

TEST_F(Crc32Test, KnownVector) {
  // The standard CRC-32 (IEEE 802.3 / zlib) check value.
  const char* s = "123456789";
  EXPECT_EQ(robust::crc32(s, 9), 0xCBF43926u);
}

TEST_F(Crc32Test, EmptyIsZero) { EXPECT_EQ(robust::crc32(nullptr, 0), 0u); }

TEST_F(Crc32Test, ChainingMatchesOneShot) {
  const char* s = "123456789";
  const std::uint32_t head = robust::crc32(s, 5);
  EXPECT_EQ(robust::crc32(s + 5, 4, head), robust::crc32(s, 9));
}

TEST_F(Crc32Test, DetectsSingleBitFlip) {
  std::vector<unsigned char> buf(64, 0xAB);
  const std::uint32_t clean = robust::crc32(buf.data(), buf.size());
  buf[17] ^= 0x01;
  EXPECT_NE(robust::crc32(buf.data(), buf.size()), clean);
}

// ---------------------------------------------------------------------------
// Fault-injection registry

TEST_F(FaultInjectorTest, UnarmedNeverFires) {
  auto& inj = robust::faults();
  EXPECT_FALSE(inj.any_armed());
  EXPECT_FALSE(inj.should_fire("io.snapshot.write"));
  EXPECT_NO_THROW(robust::fault_point("io.snapshot.write"));
}

TEST_F(FaultInjectorTest, AfterAndCountWindows) {
  auto& inj = robust::faults();
  inj.arm("x", {.rate = 1.0, .after = 2, .count = 2});
  // Hits 0,1 skipped; hits 2,3 fire; then the fire budget is spent.
  EXPECT_FALSE(inj.should_fire("x"));
  EXPECT_FALSE(inj.should_fire("x"));
  EXPECT_TRUE(inj.should_fire("x"));
  EXPECT_TRUE(inj.should_fire("x"));
  EXPECT_FALSE(inj.should_fire("x"));
  EXPECT_EQ(inj.fired("x"), 2u);
}

TEST_F(FaultInjectorTest, SpecParsing) {
  auto& inj = robust::faults();
  inj.arm_from_spec(
      "io.snapshot.read:rate=0.25,after=3,count=2,kind=fatal;"
      "shard.worker;synapse.perturb:rate=0.1,param=0.05");
  EXPECT_TRUE(inj.armed("io.snapshot.read"));
  EXPECT_TRUE(inj.armed("shard.worker"));
  EXPECT_TRUE(inj.armed("synapse.perturb"));
  EXPECT_DOUBLE_EQ(inj.rate("io.snapshot.read"), 0.25);
  EXPECT_FALSE(inj.transient("io.snapshot.read"));
  EXPECT_TRUE(inj.transient("shard.worker"));
  EXPECT_DOUBLE_EQ(inj.param("synapse.perturb"), 0.05);
  EXPECT_EQ(inj.armed_points().size(), 3u);
}

TEST_F(FaultInjectorTest, MalformedSpecsThrow) {
  auto& inj = robust::faults();
  EXPECT_THROW(inj.arm_from_spec("p:rate=abc"), Error);
  EXPECT_THROW(inj.arm_from_spec("p:bogus=1"), Error);
  EXPECT_THROW(inj.arm_from_spec("p:rate=0.5x"), Error);
  EXPECT_THROW(inj.arm_from_spec("p:kind=sometimes"), Error);
  EXPECT_THROW(inj.arm_from_spec(":rate=1"), Error);
}

TEST_F(FaultInjectorTest, RateDecisionsAreDeterministic) {
  auto& inj = robust::faults();
  const auto pattern = [&] {
    inj.clear();
    inj.set_seed(99);
    inj.arm("p", {.rate = 0.5});
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(inj.should_fire("p"));
    return fires;
  };
  const auto a = pattern();
  const auto b = pattern();
  EXPECT_EQ(a, b);
  const auto fired =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 60u);  // ~100 expected at rate 0.5
  EXPECT_LT(fired, 140u);
}

TEST_F(FaultInjectorTest, FaultPointThrowsPerKind) {
  auto& inj = robust::faults();
  inj.arm("t", {.rate = 1.0, .count = 1});  // transient by default
  EXPECT_THROW(robust::fault_point("t"), TransientError);
  inj.arm("f", {.rate = 1.0, .count = 1, .transient = false});
  try {
    robust::fault_point("f");
    FAIL() << "expected an injected fault";
  } catch (const TransientError&) {
    FAIL() << "fatal arm must not throw TransientError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Satellite (a): strict numeric config parsing

TEST_F(ConfigStrict, RejectsTrailingGarbage) {
  Config cfg;
  cfg.set("workers", "4x");
  cfg.set("rate", "1e");
  try {
    cfg.get_int("workers", 0);
    FAIL() << "expected rejection of 'workers=4x'";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("workers"), std::string::npos);
    EXPECT_NE(what.find("4x"), std::string::npos);
  }
  EXPECT_THROW(cfg.get_double("rate", 0.0), Error);
}

TEST_F(ConfigStrict, AcceptsCompleteNumbers) {
  Config cfg;
  cfg.set("rate", "1e3");
  cfg.set("frac", "-0.25");
  cfg.set("workers", "8");
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(cfg.get_double("frac", 0.0), -0.25);
  EXPECT_EQ(cfg.get_int("workers", 0), 8);
}

// ---------------------------------------------------------------------------
// Satellite (b): snapshot declared-size validation + atomic writes

TEST_F(SnapshotRobust, RejectsDeclaredSizeBeyondFile) {
  WtaNetwork net(tiny_config());
  const std::string path = temp_path("pss_robust_snap_huge.bin");
  save_snapshot(path, NetworkSnapshot::capture(net));
  // The conductance element count lives after magic(8) + neuron_count(4) +
  // input_channels(4) + g_min(8) + g_max(8) = offset 32. Declare an absurd
  // element count: the loader must fail with a named-section Error before
  // allocating, never bad_alloc.
  patch_u64(path, 32, 1ull << 60);
  try {
    load_snapshot(path);
    FAIL() << "expected rejection of an implausible element count";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conductance"), std::string::npos);
  } catch (const std::bad_alloc&) {
    FAIL() << "declared-size validation must reject before allocating";
  }
  // A count that is plausible for the geometry but larger than the bytes
  // actually present must also be caught (truncation-style corruption).
  patch_u64(path, 32, 12 * 784);
  std::filesystem::resize_file(path, 4096);
  EXPECT_THROW(load_snapshot(path), Error);
  std::remove(path.c_str());
}

TEST_F(SnapshotRobust, InjectedWriteFaultLeavesPreviousFileIntact) {
  WtaNetwork net(tiny_config());
  const std::string path = temp_path("pss_robust_snap_atomic.bin");
  const NetworkSnapshot original = NetworkSnapshot::capture(net);
  save_snapshot(path, original);

  std::vector<double> rates(net.input_channels(), 20.0);
  net.present(rates, 150.0, /*learn=*/true);
  robust::faults().arm("io.snapshot.write", {.rate = 1.0, .count = 1});
  EXPECT_THROW(save_snapshot(path, NetworkSnapshot::capture(net)),
               TransientError);
  robust::faults().clear();

  // The failed write must not have clobbered the file or left a temp behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const NetworkSnapshot back = load_snapshot(path);
  EXPECT_EQ(back.conductance, original.conductance);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint format

robust::TrainingCheckpoint trained_checkpoint(WtaNetwork& net) {
  std::vector<double> rates(net.input_channels(), 1.0);
  for (std::size_t c = 0; c < 100; ++c) rates[c] = 40.0;
  for (int i = 0; i < 3; ++i) net.present(rates, 150.0, /*learn=*/true);
  robust::TrainingCheckpoint cp = robust::TrainingCheckpoint::capture(net);
  cp.run_id = 0x1234;
  cp.parent_run_id = 0x99;
  cp.checkpoint_count = 2;
  cp.images_done = 3;
  cp.images_presented = 3;
  cp.total_post_spikes = 41;
  cp.total_input_spikes = 1234;
  cp.simulated_ms = 450.0;
  cp.wall_seconds = 1.5;
  return cp;
}

TEST_F(CheckpointTest, RoundTripIsBitwise) {
  WtaNetwork net(tiny_config());
  const robust::TrainingCheckpoint cp = trained_checkpoint(net);
  const std::string path = temp_path("pss_ckpt_roundtrip.bin");
  robust::save_checkpoint(path, cp);
  const robust::TrainingCheckpoint back = robust::load_checkpoint(path);
  EXPECT_EQ(back.run_id, cp.run_id);
  EXPECT_EQ(back.parent_run_id, cp.parent_run_id);
  EXPECT_EQ(back.checkpoint_count, cp.checkpoint_count);
  EXPECT_EQ(back.seed, cp.seed);
  EXPECT_EQ(back.images_done, cp.images_done);
  EXPECT_EQ(back.presentation_cursor, cp.presentation_cursor);
  EXPECT_EQ(back.now_ms, cp.now_ms);
  EXPECT_EQ(back.simulated_ms, cp.simulated_ms);
  EXPECT_EQ(back.wall_seconds, cp.wall_seconds);
  EXPECT_EQ(back.images_presented, cp.images_presented);
  EXPECT_EQ(back.total_post_spikes, cp.total_post_spikes);
  EXPECT_EQ(back.total_input_spikes, cp.total_input_spikes);
  EXPECT_EQ(back.neuron_count, cp.neuron_count);
  EXPECT_EQ(back.input_channels, cp.input_channels);
  EXPECT_EQ(back.conductance, cp.conductance);
  EXPECT_EQ(back.theta, cp.theta);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RejectsImplausibleDeclaredPayloadSize) {
  WtaNetwork net(tiny_config());
  const std::string path = temp_path("pss_ckpt_huge_decl.bin");
  robust::save_checkpoint(path, trained_checkpoint(net));
  // Declared payload size lives at header offset 12. Declare ~5 GiB: the
  // loader must reject the header while the size is still uint64 — before it
  // reaches the size_t allocation (which would wrap on 32-bit) or tries to
  // reconcile it against the file length.
  patch_u64(path, 12, 5ull * 1024 * 1024 * 1024);
  try {
    robust::load_checkpoint(path);
    FAIL() << "expected rejection of a >4 GiB declared payload size";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos)
        << e.what();
  } catch (const std::bad_alloc&) {
    FAIL() << "implausible-size validation must reject before allocating";
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, CorruptionMatrix) {
  WtaNetwork net(tiny_config());
  const robust::TrainingCheckpoint cp = trained_checkpoint(net);
  const std::string good = temp_path("pss_ckpt_good.bin");
  robust::save_checkpoint(good, cp);
  const auto file_size = std::filesystem::file_size(good);
  // Header layout: magic[0,8) · version[8,12) · payload_size[12,20) ·
  // crc[20,24) · payload[24,...).
  struct Case {
    const char* name;
    std::uint64_t offset;
  };
  for (const Case& c : {Case{"magic", 0}, Case{"version", 8},
                        Case{"declared payload size", 12}, Case{"crc", 20},
                        Case{"payload first byte", 24},
                        Case{"payload last byte", file_size - 1},
                        Case{"payload middle", 24 + (file_size - 24) / 2}}) {
    const std::string bad = temp_path("pss_ckpt_bad.bin");
    std::filesystem::copy_file(good, bad,
                               std::filesystem::copy_options::overwrite_existing);
    flip_byte(bad, c.offset);
    EXPECT_THROW(robust::load_checkpoint(bad), Error)
        << "corrupting " << c.name << " must be detected";
    std::remove(bad.c_str());
  }
  // Truncations: below the header, at the header boundary, and mid-payload
  // (the vector-section boundary sits past offset 168 = fixed fields).
  for (const std::uint64_t keep :
       {std::uint64_t{10}, std::uint64_t{24}, std::uint64_t{168},
        file_size - 8}) {
    const std::string bad = temp_path("pss_ckpt_trunc.bin");
    std::filesystem::copy_file(good, bad,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(bad, keep);
    EXPECT_THROW(robust::load_checkpoint(bad), Error)
        << "truncation to " << keep << " bytes must be detected";
    std::remove(bad.c_str());
  }
  std::remove(good.c_str());
}

TEST_F(CheckpointTest, InjectedCorruptionIsCaughtByCrc) {
  WtaNetwork net(tiny_config());
  const std::string path = temp_path("pss_ckpt_injected.bin");
  robust::faults().arm("snapshot.corrupt", {.rate = 1.0, .count = 1});
  robust::save_checkpoint(path, trained_checkpoint(net));
  robust::faults().clear();
  try {
    robust::load_checkpoint(path);
    FAIL() << "expected the CRC to reject the corrupted payload";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RestoreRejectsMismatchedNetwork) {
  WtaNetwork net(tiny_config(7));
  robust::TrainingCheckpoint cp = robust::TrainingCheckpoint::capture(net);
  WtaNetwork other_seed(tiny_config(8));
  EXPECT_THROW(cp.restore(other_seed), Error);
  WtaConfig big = tiny_config(7);
  big.neuron_count = 13;
  WtaNetwork other_geometry(big);
  EXPECT_THROW(cp.restore(other_geometry), Error);
}

// ---------------------------------------------------------------------------
// Checkpoint -> kill -> resume, bitwise equality

struct FinalState {
  std::vector<double> conductance;
  std::vector<double> theta;
  std::uint64_t presentation_index = 0;
  double now_ms = 0.0;
  TrainingStats stats;
};

FinalState final_state(const WtaNetwork& net, const TrainingStats& stats) {
  return {net.conductance().to_vector(),
          {net.theta().begin(), net.theta().end()},
          net.presentation_index(),
          net.now(),
          stats};
}

void expect_bitwise_equal(const FinalState& a, const FinalState& b) {
  EXPECT_EQ(a.conductance, b.conductance);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.presentation_index, b.presentation_index);
  EXPECT_EQ(a.now_ms, b.now_ms);
  EXPECT_EQ(a.stats.images_presented, b.stats.images_presented);
  EXPECT_EQ(a.stats.total_post_spikes, b.stats.total_post_spikes);
  EXPECT_EQ(a.stats.total_input_spikes, b.stats.total_input_spikes);
  EXPECT_EQ(a.stats.simulated_ms, b.stats.simulated_ms);
}

TEST_F(ResumeTest, SequentialKillAndResumeIsBitwise) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 8, .test_count = 1, .seed = 4});
  const Dataset train = data.train.head(8);

  // Reference: one uninterrupted run.
  WtaNetwork ref(tiny_config());
  UnsupervisedTrainer tref(ref, fast_trainer());
  const TrainingStats sref = tref.train(train);

  // Interrupted run: checkpoint every 3 images, killed after image 5 (the
  // train.interrupt probe's hit ordinal equals the image index).
  const std::string path = temp_path("pss_resume_seq.ckpt");
  TrainerConfig tc = fast_trainer();
  tc.checkpoint_every = 3;
  tc.checkpoint_path = path;
  WtaNetwork a(tiny_config());
  UnsupervisedTrainer ta(a, tc);
  robust::faults().arm("train.interrupt",
                       {.rate = 1.0, .after = 4, .count = 1,
                        .transient = false});
  EXPECT_THROW(ta.train(train), Error);
  robust::faults().clear();

  // Resume on a fresh network and finish the run.
  WtaNetwork b(tiny_config());
  UnsupervisedTrainer tb(b, tc);
  const robust::TrainingCheckpoint cp = robust::load_checkpoint(path);
  EXPECT_EQ(cp.images_done, 3u);
  tb.resume_from(cp);
  const TrainingStats sb = tb.train(train);

  expect_bitwise_equal(final_state(ref, sref), final_state(b, sb));
  EXPECT_TRUE(tb.lineage().resumed);
  EXPECT_EQ(tb.lineage().parent_run_id, cp.run_id);
  EXPECT_NE(tb.lineage().run_id, cp.run_id);
  // The resumed run kept checkpointing: images 6 landed on disk.
  const robust::TrainingCheckpoint last = robust::load_checkpoint(path);
  EXPECT_EQ(last.images_done, 6u);
  EXPECT_GT(last.checkpoint_count, cp.checkpoint_count);
  std::remove(path.c_str());
}

/// Same kill/resume discipline on the event-driven backend: checkpoints are
/// captured at presentation boundaries, where the lazy-STDP pending lists
/// have just been flushed — so a resume replays the sparse path bitwise, with
/// no deferred updates to lose.
TEST_F(ResumeTest, SparseBackendKillAndResumeIsBitwise) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 8, .test_count = 1, .seed = 4});
  const Dataset train = data.train.head(8);
  WtaConfig cfg = tiny_config();
  cfg.backend = "cpu_sparse";

  WtaNetwork ref(cfg);
  UnsupervisedTrainer tref(ref, fast_trainer());
  const TrainingStats sref = tref.train(train);

  const std::string path = temp_path("pss_resume_sparse.ckpt");
  TrainerConfig tc = fast_trainer();
  tc.checkpoint_every = 3;
  tc.checkpoint_path = path;
  WtaNetwork a(cfg);
  UnsupervisedTrainer ta(a, tc);
  robust::faults().arm("train.interrupt",
                       {.rate = 1.0, .after = 4, .count = 1,
                        .transient = false});
  EXPECT_THROW(ta.train(train), Error);
  robust::faults().clear();

  WtaNetwork b(cfg);
  UnsupervisedTrainer tb(b, tc);
  const robust::TrainingCheckpoint cp = robust::load_checkpoint(path);
  EXPECT_EQ(cp.images_done, 3u);
  tb.resume_from(cp);
  const TrainingStats sb = tb.train(train);

  expect_bitwise_equal(final_state(ref, sref), final_state(b, sb));
  std::remove(path.c_str());
}

TEST_F(ResumeTest, BatchedKillAndResumeIsBitwiseAcrossWorkerCounts) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 8, .test_count = 1, .seed = 4});
  const Dataset train = data.train.head(8);
  TrainerConfig tc = fast_trainer();
  tc.batch_size = 2;

  // Reference: uninterrupted batched run, single worker.
  WtaNetwork ref(tiny_config());
  UnsupervisedTrainer tref(ref, tc);
  BatchRunner runner1(1);
  const TrainingStats sref = tref.train(train, runner1);

  // Interrupted batched run: checkpoint at every batch boundary, killed
  // after the second batch (hit ordinal counts batch boundaries here).
  const std::string path = temp_path("pss_resume_batch.ckpt");
  TrainerConfig tck = tc;
  tck.checkpoint_every = 2;
  tck.checkpoint_path = path;
  WtaNetwork a(tiny_config());
  UnsupervisedTrainer ta(a, tck);
  robust::faults().arm("train.interrupt",
                       {.rate = 1.0, .after = 1, .count = 1,
                        .transient = false});
  EXPECT_THROW(ta.train(train, runner1), Error);
  robust::faults().clear();

  // Resume with MORE workers: worker count must not change the result.
  WtaNetwork b(tiny_config());
  UnsupervisedTrainer tb(b, tck);
  const robust::TrainingCheckpoint cp = robust::load_checkpoint(path);
  EXPECT_EQ(cp.images_done, 4u);
  tb.resume_from(cp);
  BatchRunner runner3(3);
  const TrainingStats sb = tb.train(train, runner3);

  expect_bitwise_equal(final_state(ref, sref), final_state(b, sb));
  std::remove(path.c_str());
}

TEST_F(ResumeTest, BatchedResumeRejectsMisalignedCheckpoint) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 6, .test_count = 1, .seed = 4});
  const Dataset train = data.train.head(4);
  const std::string path = temp_path("pss_resume_misaligned.ckpt");

  // Sequential run checkpoints at image 3 — not a batch-2 boundary.
  TrainerConfig tc = fast_trainer();
  tc.checkpoint_every = 3;
  tc.checkpoint_path = path;
  WtaNetwork a(tiny_config());
  UnsupervisedTrainer ta(a, tc);
  ta.train(train);
  EXPECT_EQ(robust::load_checkpoint(path).images_done, 3u);

  WtaNetwork b(tiny_config());
  TrainerConfig tb_cfg = fast_trainer();
  tb_cfg.batch_size = 2;
  UnsupervisedTrainer tb(b, tb_cfg);
  tb.resume_from(robust::load_checkpoint(path));
  BatchRunner runner(2);
  EXPECT_THROW(tb.train(train, runner), Error);
  std::remove(path.c_str());
}

TEST_F(ResumeTest, CheckpointWriteFailureDoesNotKillTraining) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 6, .test_count = 1, .seed = 4});
  const Dataset train = data.train.head(6);
  const std::string path = temp_path("pss_resume_wfail.ckpt");
  TrainerConfig tc = fast_trainer();
  tc.checkpoint_every = 2;
  tc.checkpoint_path = path;
  WtaNetwork net(tiny_config());
  UnsupervisedTrainer trainer(net, tc);

  const std::uint64_t failures_before =
      obs::metrics().counter("checkpoint.failures").value();
  // First checkpoint write fails; training must continue and the later
  // checkpoints must land.
  robust::faults().arm("io.snapshot.write", {.rate = 1.0, .count = 1});
  const TrainingStats stats = trainer.train(train);
  robust::faults().clear();
  EXPECT_EQ(stats.images_presented, 6u);
  EXPECT_EQ(obs::metrics().counter("checkpoint.failures").value(),
            failures_before + 1);
  // The failed write at image 2 is retried at the next image (the overdue
  // interval keeps it eligible), so checkpoints land at 3 and 5.
  const robust::TrainingCheckpoint cp = robust::load_checkpoint(path);
  EXPECT_EQ(cp.images_done, 5u);
  std::remove(path.c_str());
}

TEST_F(ResumeTest, RequiresPathWhenCheckpointingEnabled) {
  WtaNetwork net(tiny_config());
  TrainerConfig tc = fast_trainer();
  tc.checkpoint_every = 5;  // no path
  EXPECT_THROW(UnsupervisedTrainer(net, tc), Error);
}

// ---------------------------------------------------------------------------
// Tentpole (3): worker failure paths

TEST_F(BatchFaults, TransientFaultsSucceedWithinRetryBudget) {
  BatchRunner runner(1);
  // The first two probes fire; both hit item 0, which then succeeds on its
  // third attempt. Every item must complete exactly once.
  robust::faults().arm("shard.worker", {.rate = 1.0, .count = 2});
  const std::uint64_t retries_before =
      obs::metrics().counter("batch.retries").value();
  std::vector<int> done(4, 0);
  runner.run(4, [&](std::size_t, std::size_t i) { ++done[i]; });
  EXPECT_EQ(done, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(obs::metrics().counter("batch.retries").value(),
            retries_before + 2);
  EXPECT_EQ(robust::faults().fired("shard.worker"), 2u);
}

TEST_F(BatchFaults, ExhaustedRetryBudgetSurfacesShardContext) {
  BatchRunner runner(2);
  robust::faults().arm("shard.worker", {.rate = 1.0});  // always fires
  try {
    runner.run(8, [](std::size_t, std::size_t) {});
    FAIL() << "expected the injected fault to surface";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("item 0"), std::string::npos) << what;
    EXPECT_NE(what.find("retry budget"), std::string::npos) << what;
  }
  robust::faults().clear();
  // The runner stays usable after a failed run.
  std::atomic<int> ran{0};
  runner.run(8, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST_F(BatchFaults, WorkerExceptionReportsLowestFailingItem) {
  BatchRunner runner(2);
  // Two shards (0: items 0-3, 1: items 4-7); fail one item in each. The
  // rethrown error must name the lowest item index, deterministically.
  std::atomic<int> completed{0};
  try {
    runner.run(8, [&](std::size_t, std::size_t i) {
      if (i == 2 || i == 5) throw std::runtime_error("boom at " +
                                                     std::to_string(i));
      ++completed;
    });
    FAIL() << "expected the worker exception to surface";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("item 2"), std::string::npos) << what;
    EXPECT_NE(what.find("boom at 2"), std::string::npos) << what;
    EXPECT_NE(what.find("2 item(s) failed"), std::string::npos) << what;
  }
  // Shard 0 abandoned items 3; shard 1 abandoned 6,7 — but both shards'
  // earlier items completed (no shard kills another shard's work).
  EXPECT_EQ(completed.load(), 3);
}

TEST_F(BatchFaults, FailuresCountInMetrics) {
  BatchRunner runner(1);
  const std::uint64_t failures_before =
      obs::metrics().counter("batch.failures").value();
  EXPECT_THROW(runner.run(3,
                          [](std::size_t, std::size_t i) {
                            if (i == 1) throw std::runtime_error("x");
                          }),
               Error);
  EXPECT_EQ(obs::metrics().counter("batch.failures").value(),
            failures_before + 1);
}

TEST_F(PoolFaults, CallerChunkExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin == 0)
                                     throw std::runtime_error("chunk0");
                                 }),
               std::runtime_error);
  // The pool survives and runs the next launch normally.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
    sum += e - b;
  });
  EXPECT_EQ(sum.load(), 100u);
}

TEST_F(PoolFaults, LowestChunkIndexWinsDeterministically) {
  ThreadPool pool(4);  // chunks start at 0, 25, 50, 75 for n = 100
  for (int round = 0; round < 5; ++round) {
    try {
      pool.parallel_for(100, [](std::size_t begin, std::size_t) {
        if (begin >= 50) throw std::runtime_error(std::to_string(begin));
      });
      FAIL() << "expected worker chunk exceptions to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "50");
    }
  }
}

// ---------------------------------------------------------------------------
// Divergence guards

TEST_F(GuardsTest, CleanNetworkPasses) {
  WtaNetwork net(tiny_config());
  const robust::DivergenceReport report = robust::scan_network(net, "t0");
  EXPECT_FALSE(report.diverged());
  EXPECT_NO_THROW(robust::require_finite_network(net));
}

TEST_F(GuardsTest, DetectsNaNAndBounds) {
  WtaNetwork net(tiny_config());
  auto row = net.conductance().row_mut(0);
  row[0] = std::numeric_limits<double>::quiet_NaN();
  row[1] = std::numeric_limits<double>::infinity();
  row[2] = net.conductance().g_max() + 1.0;
  const robust::DivergenceReport report = robust::scan_network(net, "poked");
  EXPECT_TRUE(report.diverged());
  EXPECT_EQ(report.nan_count, 1u);
  EXPECT_EQ(report.inf_count, 1u);
  EXPECT_EQ(report.above_max, 1u);
  EXPECT_EQ(report.first_bad_synapse, 0);
  EXPECT_NE(report.to_string().find("poked"), std::string::npos);
  const std::uint64_t divergence_before =
      obs::metrics().counter("train.divergence").value();
  EXPECT_THROW(robust::require_finite_network(net, "poked"), Error);
  EXPECT_EQ(obs::metrics().counter("train.divergence").value(),
            divergence_before + 1);
}

TEST_F(GuardsTest, TrainerRefusesToCheckpointDivergedState) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 2, .test_count = 1, .seed = 4});
  WtaNetwork net(tiny_config());
  net.conductance().row_mut(0)[0] = std::numeric_limits<double>::quiet_NaN();
  const std::string path = temp_path("pss_guard.ckpt");
  TrainerConfig tc = fast_trainer();
  tc.checkpoint_every = 1;
  tc.checkpoint_path = path;
  UnsupervisedTrainer trainer(net, tc);
  EXPECT_THROW(trainer.train(data.train.head(2)), Error);
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------------
// Synaptic fault models (She et al. 2019 companion paper)

TEST_F(SynapticFaults, DeterministicAndRateAccurate) {
  const auto damaged = [](const robust::SynapticFaultPlan& plan) {
    ConductanceMatrix g(40, 100, 0.0, 1.0);
    SequentialRng rng(5);
    g.initialize_uniform(0.2, 0.8, rng);
    const robust::SynapticFaultSummary summary =
        robust::apply_synaptic_faults(g, plan);
    return std::make_pair(g.to_vector(), summary);
  };
  robust::SynapticFaultPlan plan;
  plan.stuck_lo_rate = 0.15;
  plan.stuck_hi_rate = 0.10;
  const auto [va, sa] = damaged(plan);
  const auto [vb, sb] = damaged(plan);
  EXPECT_EQ(va, vb) << "same plan must damage the same cells";
  EXPECT_EQ(sa.stuck_lo, sb.stuck_lo);

  const double n = 40.0 * 100.0;
  EXPECT_NEAR(static_cast<double>(sa.stuck_lo) / n, 0.15, 0.03);
  EXPECT_NEAR(static_cast<double>(sa.stuck_hi) / n, 0.10, 0.03);
  // Stuck cells sit exactly at the rails.
  std::size_t at_lo = 0;
  std::size_t at_hi = 0;
  for (const double v : va) {
    if (v == 0.0) ++at_lo;
    if (v == 1.0) ++at_hi;
  }
  EXPECT_EQ(at_lo, sa.stuck_lo);
  EXPECT_EQ(at_hi, sa.stuck_hi);
}

TEST_F(SynapticFaults, PerturbationStaysInRange) {
  ConductanceMatrix g(20, 50, 0.0, 1.0);
  SequentialRng rng(5);
  g.initialize_uniform(0.1, 0.9, rng);
  const std::vector<double> before = g.to_vector();
  robust::SynapticFaultPlan plan;
  plan.perturb_rate = 0.5;
  plan.perturb_sigma = 0.25;
  const robust::SynapticFaultSummary summary =
      robust::apply_synaptic_faults(g, plan);
  EXPECT_GT(summary.perturbed, 0u);
  EXPECT_EQ(summary.stuck_lo, 0u);
  const std::vector<double> after = g.to_vector();
  std::size_t changed = 0;
  for (std::size_t s = 0; s < after.size(); ++s) {
    EXPECT_GE(after[s], 0.0);
    EXPECT_LE(after[s], 1.0);
    if (after[s] != before[s]) ++changed;
  }
  EXPECT_EQ(changed, summary.perturbed);
}

TEST_F(SynapticFaults, PlanFromInjector) {
  EXPECT_FALSE(robust::synaptic_plan_from_injector().any());
  robust::faults().arm_from_spec(
      "synapse.stuck_lo:rate=0.08;synapse.perturb:rate=0.2,param=0.3");
  const robust::SynapticFaultPlan plan = robust::synaptic_plan_from_injector();
  EXPECT_TRUE(plan.any());
  EXPECT_DOUBLE_EQ(plan.stuck_lo_rate, 0.08);
  EXPECT_DOUBLE_EQ(plan.stuck_hi_rate, 0.0);
  EXPECT_DOUBLE_EQ(plan.perturb_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.perturb_sigma, 0.3);
}

}  // namespace
}  // namespace pss
