// Tests for the dense conductance storage and the current-accumulation
// kernel (eq. 3).
#include <gtest/gtest.h>

#include <numeric>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/synapse/conductance_matrix.hpp"

namespace pss {
namespace {

TEST(ConductanceMatrix, DimensionsAndCounts) {
  const ConductanceMatrix m(10, 20);
  EXPECT_EQ(m.post_count(), 10u);
  EXPECT_EQ(m.pre_count(), 20u);
  EXPECT_EQ(m.synapse_count(), 200u);
}

TEST(ConductanceMatrix, InitializeUniformRespectsRange) {
  ConductanceMatrix m(8, 16, 0.0, 1.0);
  SequentialRng rng(1);
  m.initialize_uniform(0.2, 0.6, rng);
  for (NeuronIndex j = 0; j < 8; ++j) {
    for (double v : m.row(j)) {
      EXPECT_GE(v, 0.2);
      EXPECT_LE(v, 0.6);
    }
  }
}

TEST(ConductanceMatrix, InitializeWithQuantizerSnapsToGrid) {
  ConductanceMatrix m(4, 4, 0.0, 1.0);
  SequentialRng rng(2);
  const Quantizer q(q0_2(), RoundingMode::kNearest);
  m.initialize_uniform(0.0, 0.75, rng, &q);
  for (NeuronIndex j = 0; j < 4; ++j) {
    for (double v : m.row(j)) {
      EXPECT_TRUE(q0_2().representable(v)) << v;
    }
  }
}

TEST(ConductanceMatrix, SetClampsToRange) {
  ConductanceMatrix m(2, 2, 0.1, 0.9);
  m.set(0, 0, 5.0);
  m.set(0, 1, -5.0);
  EXPECT_DOUBLE_EQ(m.get(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(m.get(0, 1), 0.1);
}

TEST(ConductanceMatrix, RowsAreIndependentViews) {
  ConductanceMatrix m(3, 4);
  auto row1 = m.row_mut(1);
  row1[2] = 0.7;
  EXPECT_DOUBLE_EQ(m.get(1, 2), 0.7);
  EXPECT_DOUBLE_EQ(m.get(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.get(2, 2), 0.0);
}

TEST(ConductanceMatrix, AccumulateCurrentsMatchesManualSum) {
  ConductanceMatrix m(3, 5);
  // g[post][pre] = post + 0.1 * pre for a recognizable pattern (clamped by
  // the [0,1] default range, so scale down).
  for (NeuronIndex post = 0; post < 3; ++post) {
    for (ChannelIndex pre = 0; pre < 5; ++pre) {
      m.set(post, pre, 0.1 * post + 0.01 * pre);
    }
  }
  const std::vector<ChannelIndex> active = {1, 3};
  std::vector<double> currents(3, 0.0);
  m.accumulate_currents(active, 2.0, currents);
  for (std::size_t post = 0; post < 3; ++post) {
    const double p = static_cast<double>(post);
    const double expected = 2.0 * ((0.1 * p + 0.01) + (0.1 * p + 0.03));
    EXPECT_NEAR(currents[post], expected, 1e-12);
  }
}

TEST(ConductanceMatrix, AccumulateCurrentsAddsToExisting) {
  ConductanceMatrix m(2, 2);
  m.set(0, 0, 0.5);
  std::vector<double> currents = {1.0, 1.0};
  const std::vector<ChannelIndex> active = {0};
  m.accumulate_currents(active, 1.0, currents);
  EXPECT_DOUBLE_EQ(currents[0], 1.5);
  EXPECT_DOUBLE_EQ(currents[1], 1.0);
}

TEST(ConductanceMatrix, AccumulateCurrentsEmptyActiveIsNoop) {
  ConductanceMatrix m(2, 2);
  m.set(0, 0, 0.5);
  std::vector<double> currents = {0.25, 0.5};
  m.accumulate_currents({}, 1.0, currents);
  EXPECT_DOUBLE_EQ(currents[0], 0.25);
  EXPECT_DOUBLE_EQ(currents[1], 0.5);
}

TEST(ConductanceMatrix, StatsAreConsistent) {
  ConductanceMatrix m(2, 3);
  const double values[2][3] = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  for (NeuronIndex j = 0; j < 2; ++j) {
    for (ChannelIndex c = 0; c < 3; ++c) m.set(j, c, values[j][c]);
  }
  EXPECT_NEAR(m.mean(), 0.35, 1e-12);
  EXPECT_DOUBLE_EQ(m.min_value(), 0.1);
  EXPECT_DOUBLE_EQ(m.max_value(), 0.6);
  const auto flat = m.to_vector();
  EXPECT_EQ(flat.size(), 6u);
  EXPECT_NEAR(std::accumulate(flat.begin(), flat.end(), 0.0), 2.1, 1e-12);
}

TEST(ConductanceMatrix, RejectsInvalidConstruction) {
  EXPECT_THROW(ConductanceMatrix(0, 5), Error);
  EXPECT_THROW(ConductanceMatrix(5, 0), Error);
  EXPECT_THROW(ConductanceMatrix(2, 2, 1.0, 1.0), Error);
}

TEST(ConductanceMatrix, RejectsWrongCurrentVectorSize) {
  ConductanceMatrix m(3, 3);
  std::vector<double> wrong(2, 0.0);
  const std::vector<ChannelIndex> active = {0};
  EXPECT_THROW(m.accumulate_currents(active, 1.0, wrong), Error);
}

}  // namespace
}  // namespace pss
