// Compute-backend layer tests (see src/pss/backend/):
//  * registry behavior — names, availability, unknown-name and cuda-stub
//    error messages;
//  * CounterRng::uniform_many — bitwise-identical to per-call uniform();
//  * cpu backend — bitwise-equivalent kernel results at every worker count
//    (tolerance 0: the cpu table IS the pre-backend code, moved verbatim);
//  * cpu vs cpu_simd — stdp.row bitwise-identical; the fused step matches
//    within a documented ULP bound (the SIMD row gather reassociates the
//    conductance sum into four accumulators, so the per-neuron current may
//    differ by a few ULP, never more — see kernels_simd.cpp);
//  * StatePool — row bounds, clamped bulk load, size validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/network/wta_network.hpp"

namespace pss {
namespace {

TEST(BackendRegistry, ListsCpuBackendsAndCudaStub) {
  const auto names = backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu_simd"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu_sparse"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cuda"), names.end());
  EXPECT_TRUE(backend_available("cpu"));
  EXPECT_TRUE(backend_available("cpu_simd"));
  EXPECT_TRUE(backend_available("cpu_sparse"));
  EXPECT_FALSE(backend_available("cuda"));
  EXPECT_FALSE(backend_available("tpu"));
}

TEST(BackendRegistry, UnknownNameListsValidNames) {
  try {
    make_backend("gpu3000");
    FAIL() << "expected pss::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown backend"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cpu_simd"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, CudaStubExplainsTheGate) {
  try {
    make_backend("cuda");
    FAIL() << "expected pss::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("PSS_ENABLE_CUDA"), std::string::npos) << msg;
    EXPECT_NE(msg.find("backend=cpu"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, NetworkConfigRejectsUnknownBackend) {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                         StdpKind::kStochastic, 4);
  cfg.backend = "bogus";
  EXPECT_THROW(WtaNetwork net(cfg), Error);
}

TEST(BackendRegistry, DefaultBackendIsCpu) {
  EXPECT_STREQ(default_backend().name(), "cpu");
}

TEST(BackendBuffers, AllocZeroFillsAndCopiesRoundTrip) {
  auto backend = make_backend("cpu");
  auto* p = static_cast<double*>(backend->alloc_bytes(16 * sizeof(double)));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p[i], 0.0);
  std::vector<double> host(16);
  for (int i = 0; i < 16; ++i) host[i] = 0.5 * i;
  backend->copy_to_device(p, host.data(), 16 * sizeof(double));
  std::vector<double> back(16, -1.0);
  backend->copy_to_host(back.data(), p, 16 * sizeof(double));
  EXPECT_EQ(back, host);
  backend->synchronize();  // no-op on CPU, must not block or throw
  backend->free_bytes(p, 16 * sizeof(double));
}

TEST(CounterRngBulk, UniformManyIsBitwiseIdenticalToPerCallDraws) {
  const CounterRng rng(0xfeedULL, 42);
  // Sizes straddle the 8-lane block width (tail handling) and counter bases
  // exercise the carry into the high word.
  for (std::uint64_t base : {0ull, 1ull, 1ull << 32, 0xffffffffull - 3}) {
    for (std::size_t n : {1u, 7u, 8u, 9u, 65u, 1000u}) {
      std::vector<double> bulk(n);
      rng.uniform_many(base, bulk);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bulk[i], rng.uniform(base + i))
            << "base=" << base << " i=" << i;
      }
    }
  }
}

// --- cross-backend kernel equivalence --------------------------------------

struct KernelRig {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Backend> backend;
  std::unique_ptr<StatePool> pool;
  std::vector<ChannelIndex> active;

  Engine& eng() { return *engine; }

  KernelRig(const std::string& name, std::size_t workers, std::size_t neurons,
            std::size_t channels) {
    engine = std::make_unique<Engine>(workers);
    backend = make_backend(name, engine.get());
    pool = std::make_unique<StatePool>(backend.get(),
                                       StatePool::Geometry{neurons, channels});
    pool->set_g_bounds(0.0, 1.0);
    // Deterministic, irregular state so every kernel branch is exercised.
    SequentialRng init(7);
    for (auto& g : pool->g()) g = init.uniform();
    auto v = pool->membrane();
    auto u = pool->recovery();
    auto currents = pool->currents();
    auto last = pool->last_spike();
    auto inhibited = pool->inhibited_until();
    for (std::size_t i = 0; i < neurons; ++i) {
      v[i] = -65.0 + 15.0 * init.uniform();
      u[i] = -14.0 + init.uniform();
      currents[i] = 4.0 * init.uniform();
      last[i] = (i % 5 == 0) ? kNeverSpiked : 0.25 * static_cast<double>(i);
      inhibited[i] = (i % 7 == 0) ? 1e9 : -1.0;  // a few permanently inhibited
    }
    auto last_pre = pool->last_pre_spike();
    for (std::size_t c = 0; c < channels; ++c) {
      last_pre[c] = (c % 3 == 0) ? kNeverSpiked : 0.1 * static_cast<double>(c);
    }
    for (std::size_t c = 0; c < channels; c += 9) active.push_back(static_cast<ChannelIndex>(c));
  }

  LifFusedStepArgs lif_fused_args(TimeMs now) {
    LifFusedStepArgs args;
    args.params = paper_lif_parameters();
    args.step.state = NeuronStateView{pool->membrane(), pool->recovery(),
                                      pool->last_spike(),
                                      pool->inhibited_until(), pool->spiked()};
    args.step.currents = pool->currents();
    args.step.decay_factor = 0.8;
    args.step.conductance = std::as_const(*pool).g();
    args.step.pre_count = pool->channels();
    args.step.active_pre = active;
    args.step.amplitude = 3.0;
    args.step.now = now;
    args.step.dt = 0.5;
    return args;
  }

  StdpRowArgs stdp_args(const StdpUpdater& updater, const CounterRng& rng,
                        NeuronIndex post, TimeMs t_post) {
    StdpRowArgs args;
    args.updater = &updater;
    args.row = pool->g_row(post);
    args.last_pre_spike = std::as_const(*pool).last_pre_spike();
    args.t_post = t_post;
    args.rng = &rng;
    args.counter_base = 17;
    return args;
  }
};

/// The cpu table is the pre-backend code moved verbatim: results must be
/// bitwise-identical at every worker count (tolerance 0).
TEST(BackendEquivalence, CpuKernelsAreWorkerCountInvariant) {
  constexpr std::size_t kNeurons = 300;
  constexpr std::size_t kChannels = 784;
  KernelRig ref("cpu", 1, kNeurons, kChannels);
  const StdpUpdater updater{StdpUpdaterConfig{}};
  const CounterRng rng(11, 3);
  for (TimeMs t = 0.5; t < 5.0; t += 0.5) {
    ref.backend->kernels().lif_step_fused(ref.eng(),
                                          ref.lif_fused_args(t));
    ref.backend->kernels().stdp_row(ref.eng(),
                                    ref.stdp_args(updater, rng, 2, t));
  }
  for (std::size_t workers : {2u, 4u, 7u}) {
    KernelRig rig("cpu", workers, kNeurons, kChannels);
    for (TimeMs t = 0.5; t < 5.0; t += 0.5) {
      rig.backend->kernels().lif_step_fused(rig.eng(),
                                            rig.lif_fused_args(t));
      rig.backend->kernels().stdp_row(rig.eng(),
                                      rig.stdp_args(updater, rng, 2, t));
    }
    for (std::size_t i = 0; i < kNeurons; ++i) {
      ASSERT_EQ(rig.pool->membrane()[i], ref.pool->membrane()[i]) << i;
      ASSERT_EQ(rig.pool->currents()[i], ref.pool->currents()[i]) << i;
    }
    for (std::size_t s = 0; s < kNeurons * kChannels; ++s) {
      ASSERT_EQ(rig.pool->g()[s], ref.pool->g()[s]) << s;
    }
  }
}

/// stdp.row.simd consumes bitwise-identical draws (uniform_many) and its
/// gate shortcut only skips provably-unchanged synapses, so the SIMD row
/// update is exact — not approximately equal, EQUAL.
TEST(BackendEquivalence, SimdStdpRowIsBitwiseIdentical) {
  constexpr std::size_t kNeurons = 8;
  constexpr std::size_t kChannels = 784;
  const CounterRng rng(23, 5);
  for (StdpKind kind : {StdpKind::kStochastic, StdpKind::kDeterministic}) {
    for (DepressionMode dep :
         {DepressionMode::kStaleAtPost, DepressionMode::kPreSpikeEq7,
          DepressionMode::kBoth}) {
      StdpUpdaterConfig cfg;
      cfg.kind = kind;
      cfg.depression = dep;
      const StdpUpdater updater(cfg);
      KernelRig a("cpu", 3, kNeurons, kChannels);
      KernelRig b("cpu_simd", 3, kNeurons, kChannels);
      for (TimeMs t = 1.0; t < 40.0; t += 1.0) {
        a.backend->kernels().stdp_row(a.eng(),
                                      a.stdp_args(updater, rng, 1, t));
        b.backend->kernels().stdp_row(b.eng(),
                                      b.stdp_args(updater, rng, 1, t));
      }
      for (std::size_t s = 0; s < kNeurons * kChannels; ++s) {
        ASSERT_EQ(a.pool->g()[s], b.pool->g()[s])
            << "synapse " << s << " kind=" << static_cast<int>(kind)
            << " dep=" << static_cast<int>(dep);
      }
    }
  }
}

/// Distance in representable doubles — the natural metric for reassociated
/// floating-point sums.
std::int64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return ia > ib ? ia - ib : ib - ia;
}

/// The SIMD fused step reassociates the per-row conductance gather into four
/// accumulators: |cpu − cpu_simd| on the accumulated current is bounded by
/// the reassociation error of an ~90-term double sum. 16 ULP is a generous
/// documented bound (measured: ≤ 4 on this rig); the membrane update then
/// runs in identical operation order on that current.
TEST(BackendEquivalence, SimdFusedStepMatchesWithinUlpBound) {
  constexpr std::int64_t kMaxUlp = 16;
  KernelRig a("cpu", 4, 500, 784);
  KernelRig b("cpu_simd", 4, 500, 784);
  // A single step: trajectories may diverge once a borderline spike flips
  // (documented in kernels_simd.cpp), so the per-kernel contract is checked
  // one launch at a time against identical input state.
  a.backend->kernels().lif_step_fused(a.eng(), a.lif_fused_args(0.5));
  b.backend->kernels().lif_step_fused(b.eng(), b.lif_fused_args(0.5));
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_LE(ulp_distance(a.pool->currents()[i], b.pool->currents()[i]),
              kMaxUlp)
        << i;
    EXPECT_LE(ulp_distance(a.pool->membrane()[i], b.pool->membrane()[i]),
              kMaxUlp)
        << i;
  }
}

// --- StatePool contracts ----------------------------------------------------

TEST(StatePoolTest, RowAccessorChecksBounds) {
  StatePool pool(&default_backend(), StatePool::Geometry{4, 6});
  pool.set_g_bounds(0.0, 1.0);
  EXPECT_EQ(pool.g_row(3).size(), 6u);
  EXPECT_THROW(pool.g_row(4), Error);
}

TEST(StatePoolTest, BulkLoadValidatesSizeAndClamps) {
  StatePool pool(&default_backend(), StatePool::Geometry{2, 3});
  pool.set_g_bounds(0.2, 0.8);
  EXPECT_THROW(pool.load_g(std::vector<double>(5, 0.5), true), Error);
  const std::vector<double> values = {-1.0, 0.5, 2.0, 0.2, 0.8, 0.25};
  pool.load_g(values, /*clamp=*/true);
  const std::vector<double> expect = {0.2, 0.5, 0.8, 0.2, 0.8, 0.25};
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(pool.g()[i], expect[i]) << i;
  }
}

TEST(StatePoolTest, RejectsEmptyGeometryAndInvertedBounds) {
  EXPECT_THROW(StatePool(&default_backend(), StatePool::Geometry{0, 3}),
               Error);
  StatePool pool(&default_backend(), StatePool::Geometry{1, 1});
  EXPECT_THROW(pool.set_g_bounds(1.0, 1.0), Error);
}

// --- sparse event backend ---------------------------------------------------

/// The event-path kernel slots are what WtaNetwork probes to pick the sparse
/// loop: all four present on cpu_sparse, all four absent on the dense tables
/// (dense backends need no stubs — the probe is the feature flag).
TEST(SparseBackend, EventKernelSlotsGateTheSparsePath) {
  auto sparse = make_backend("cpu_sparse");
  EXPECT_NE(sparse->kernels().poisson_encode_events, nullptr);
  EXPECT_NE(sparse->kernels().regular_encode_events, nullptr);
  EXPECT_NE(sparse->kernels().sparse_accumulate, nullptr);
  EXPECT_NE(sparse->kernels().stdp_flush, nullptr);
  // The dense slots stay populated — the sparse table is an overlay, and
  // readout still uses the dense fused step.
  EXPECT_NE(sparse->kernels().lif_step_fused, nullptr);
  for (const char* dense : {"cpu", "cpu_simd"}) {
    auto backend = make_backend(dense);
    EXPECT_EQ(backend->kernels().poisson_encode_events, nullptr) << dense;
    EXPECT_EQ(backend->kernels().regular_encode_events, nullptr) << dense;
    EXPECT_EQ(backend->kernels().sparse_accumulate, nullptr) << dense;
    EXPECT_EQ(backend->kernels().stdp_flush, nullptr) << dense;
  }
}

/// Whole-network worker-count invariance on the sparse path: event building,
/// CSR accumulation, and the lazy-STDP flush all use counter-indexed draws
/// and worker-independent partitioning, so the trained conductance matrix is
/// bitwise-identical at every worker count.
TEST(SparseBackend, NetworkIsWorkerCountInvariant) {
  auto run = [](std::size_t workers) {
    WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                           StdpKind::kStochastic, 12);
    cfg.backend = "cpu_sparse";
    cfg.seed = 7;
    Engine engine(workers);
    WtaNetwork net(cfg, &engine);
    std::vector<double> rates(cfg.input_channels);
    for (std::size_t c = 0; c < rates.size(); ++c) {
      rates[c] = (c % 7 == 0) ? 22.0 : 2.0;
    }
    for (int i = 0; i < 6; ++i) {
      net.present(rates, 150.0, /*learn=*/true);
    }
    return net.conductance().to_vector();
  };
  const auto ref = run(1);
  for (std::size_t workers : {4u, 7u}) {
    const auto got = run(workers);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << "synapse " << i << " workers=" << workers;
    }
  }
}

/// cpu vs cpu_sparse is a *statistical* equivalence, not a bitwise one: the
/// event-list Poisson encoder indexes its draws per spike interval (geometric
/// sampling) while the dense path draws per step, so the trains are
/// distributionally equal but not identical. Train both on the same input
/// statistics and require the learned populations to agree in the aggregate.
TEST(SparseBackend, MatchesDenseBackendStatistically) {
  auto train = [](const std::string& backend) {
    WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                           StdpKind::kStochastic, 15);
    cfg.backend = backend;
    cfg.seed = 19;
    WtaNetwork net(cfg);
    std::vector<double> rates(cfg.input_channels);
    for (std::size_t c = 0; c < rates.size(); ++c) {
      rates[c] = (c % 5 < 2) ? 20.0 : 2.0;
    }
    // Long enough for homeostasis to settle both populations onto its
    // firing-rate target; early spike counts are WTA-chaotic.
    for (int i = 0; i < 30; ++i) {
      net.present(rates, 200.0, /*learn=*/true);
    }
    double mean = 0.0;
    const auto g = net.conductance().to_vector();
    for (const double v : g) mean += v;
    mean /= static_cast<double>(g.size());
    return std::pair<double, std::uint64_t>{mean, net.total_spikes()};
  };
  const auto [dense_mean, dense_spikes] = train("cpu");
  const auto [sparse_mean, sparse_spikes] = train("cpu_sparse");
  ASSERT_GT(dense_spikes, 0u);
  ASSERT_GT(sparse_spikes, 0u);
  // Same drive statistics → comparable activity and learned mass.
  EXPECT_LT(sparse_spikes, dense_spikes * 3);
  EXPECT_LT(dense_spikes, sparse_spikes * 3);
  EXPECT_NEAR(sparse_mean, dense_mean, 0.15)
      << "dense=" << dense_mean << " sparse=" << sparse_mean;
}

// --- layer-graph kernels: conv_accumulate / pool_forward --------------------
//
// Both kernels promise bitwise-identical results on every backend and worker
// count (kernels.hpp): conv taps accumulate in ascending active order, pool
// is pure flag work. Run one geometry across {cpu, cpu_simd, cpu_sparse} ×
// worker counts and assert exact equality against the cpu/1-worker result.

struct ConvGeometry {
  static constexpr std::size_t kFilters = 3;
  static constexpr std::size_t kChannels = 2;
  static constexpr std::size_t kKernel = 3;
  static constexpr std::size_t kStride = 2;
  static constexpr std::size_t kInW = 12;
  static constexpr std::size_t kInH = 10;
  static constexpr std::size_t kOutW = (kInW - kKernel) / kStride + 1;
  static constexpr std::size_t kOutH = (kInH - kKernel) / kStride + 1;

  std::vector<double> filters;
  std::vector<ChannelIndex> active;

  ConvGeometry() {
    filters.resize(kFilters * kChannels * kKernel * kKernel);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      // Irregular signed taps; exact in double so accumulation order is the
      // only possible source of divergence.
      filters[i] = static_cast<double>((i * 37 % 23)) / 8.0 - 1.25;
    }
    for (std::size_t p = 0; p < kChannels * kInH * kInW; p += 7) {
      active.push_back(static_cast<ChannelIndex>(p));
    }
  }

  /// Two accumulate steps (clear, then decay 0.5) on `name`/`workers`.
  std::vector<double> run(const std::string& name, std::size_t workers) const {
    Engine engine(workers);
    auto backend = make_backend(name);
    std::vector<double> currents(kFilters * kOutH * kOutW, 0.0);
    ConvAccumulateArgs args;
    args.filters = filters;
    args.filter_count = kFilters;
    args.in_channels = kChannels;
    args.kernel = kKernel;
    args.stride = kStride;
    args.in_width = kInW;
    args.in_height = kInH;
    args.out_width = kOutW;
    args.out_height = kOutH;
    args.active_pre = active;
    args.amplitude = 0.8;
    args.decay_factor = 0.0;
    args.currents = currents;
    backend->kernels().conv_accumulate(engine, args);
    args.decay_factor = 0.5;
    backend->kernels().conv_accumulate(engine, args);
    return currents;
  }
};

TEST(GraphKernels, ConvAccumulateIsBitwiseEqualAcrossBackendsAndWorkers) {
  const ConvGeometry geo;
  const std::vector<double> want = geo.run("cpu", 1);
  // Sanity: the active list actually drove currents somewhere.
  EXPECT_NE(*std::max_element(want.begin(), want.end()), 0.0);
  for (const std::string& name : {std::string("cpu"), std::string("cpu_simd"),
                                  std::string("cpu_sparse")}) {
    for (std::size_t workers : {1u, 3u, 4u}) {
      const std::vector<double> got = geo.run(name, workers);
      ASSERT_EQ(got, want) << name << " workers=" << workers;
    }
  }
}

TEST(GraphKernels, PoolForwardIsIdenticalAcrossBackendsAndWorkers) {
  constexpr std::size_t kChannels = 3, kInW = 7, kInH = 5, kWindow = 2;
  constexpr std::size_t kOutW = (kInW + kWindow - 1) / kWindow;
  constexpr std::size_t kOutH = (kInH + kWindow - 1) / kWindow;
  std::vector<std::uint8_t> spiked(kChannels * kInH * kInW, 0);
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    spiked[i] = (i * 5 + 1) % 3 == 0 ? 1 : 0;
  }

  auto run = [&](const std::string& name, std::size_t workers) {
    Engine engine(workers);
    auto backend = make_backend(name);
    std::vector<std::uint8_t> pooled(kChannels * kOutH * kOutW, 0);
    std::vector<std::uint32_t> counts(pooled.size(), 0);
    PoolForwardArgs args;
    args.spiked = spiked;
    args.channels = kChannels;
    args.in_width = kInW;
    args.in_height = kInH;
    args.window = kWindow;
    args.out_width = kOutW;
    args.out_height = kOutH;
    args.pooled = pooled;
    args.pooled_counts = counts;
    backend->kernels().pool_forward(engine, args);  // step 1
    backend->kernels().pool_forward(engine, args);  // step 2 (counts += 1)
    return std::pair(pooled, counts);
  };

  const auto want = run("cpu", 1);
  for (std::size_t i = 0; i < want.first.size(); ++i) {
    // Counts accumulate per step: two identical steps double every flag.
    EXPECT_EQ(want.second[i], want.first[i] * 2u) << i;
  }
  for (const std::string& name : {std::string("cpu"), std::string("cpu_simd"),
                                  std::string("cpu_sparse")}) {
    for (std::size_t workers : {1u, 4u}) {
      const auto got = run(name, workers);
      ASSERT_EQ(got.first, want.first) << name << " workers=" << workers;
      ASSERT_EQ(got.second, want.second) << name << " workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace pss
