// Cross-module property and invariant tests: WTA exclusivity, update
// monotonicity, encoder statistics, end-to-end determinism — the invariants
// the paper's mechanisms rest on, checked over parameter sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/encoding/regular_encoder.hpp"
#include "pss/engine/spike_events.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/stats/summary.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {
namespace {

// ---------------------------------------------------------------------------
// WTA exclusivity: after any spike, no *other* neuron may spike within the
// inhibition window (learning mode).
TEST(WtaInvariant, NoOtherSpikesInsideInhibitionWindow) {
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 25);
  cfg.input_channels = 64;
  cfg.t_inh_ms = 15.0;
  cfg.reference_total_rate_hz = 0.0;
  cfg.seed = 13;
  WtaNetwork net(cfg);
  std::vector<double> rates(64, 30.0);

  const auto r = net.present(rates, 600.0, true, /*record_spikes=*/true);
  ASSERT_GT(r.spike_events.size(), 3u);
  for (std::size_t i = 0; i < r.spike_events.size(); ++i) {
    for (std::size_t k = i + 1; k < r.spike_events.size(); ++k) {
      const auto& [t1, n1] = r.spike_events[i];
      const auto& [t2, n2] = r.spike_events[k];
      if (t2 - t1 > cfg.t_inh_ms) break;
      if (t2 == t1) continue;  // simultaneous threshold crossings allowed
      EXPECT_EQ(n1, n2) << "neuron " << n2 << " fired " << (t2 - t1)
                        << " ms after " << n1
                        << "'s spike, inside the inhibition window";
    }
  }
}

// ---------------------------------------------------------------------------
// Updater monotonicity per event type, over every Table I row.
class UpdaterMonotonicity : public ::testing::TestWithParam<LearningOption> {};

TEST_P(UpdaterMonotonicity, PotentiationNeverDecreasesConductance) {
  const Table1Row& row = table1_row(GetParam());
  StdpUpdaterConfig cfg;
  cfg.kind = StdpKind::kDeterministic;  // always-update inside the window
  cfg.magnitude = row.magnitude.value_or(
      StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0});
  cfg.gate = row.gate;
  cfg.format = row.format;
  cfg.rounding = RoundingMode::kStochastic;
  const StdpUpdater u(cfg);
  SequentialRng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double g = rng.uniform(0.0, u.effective_g_max());
    // gap inside the window -> potentiation branch.
    const double g2 = u.update_at_post_spike(g, 1.0, rng.uniform(),
                                             rng.uniform(), rng.uniform());
    EXPECT_GE(g2 + 1e-12, g);
    // gap far outside -> depression branch.
    const double g3 = u.update_at_post_spike(g, 1e6, rng.uniform(),
                                             rng.uniform(), rng.uniform());
    EXPECT_LE(g3 - 1e-12, g);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, UpdaterMonotonicity,
                         ::testing::Values(LearningOption::k2Bit,
                                           LearningOption::k4Bit,
                                           LearningOption::k8Bit,
                                           LearningOption::k16Bit,
                                           LearningOption::kFloat32));

// ---------------------------------------------------------------------------
// Stochastic gate empirical frequencies match eq. 6 within tolerance.
TEST(StochasticGateStatistics, EmpiricalPotentiationRateMatchesEq6) {
  StdpUpdaterConfig cfg;
  cfg.kind = StdpKind::kStochastic;
  cfg.gate = StochasticGateParams{0.6, 25.0, 0.0, 10.0};  // no depression
  const StdpUpdater u(cfg);
  CounterRng rng(99, 1);
  for (const double gap : {0.0, 10.0, 25.0, 60.0}) {
    int applied = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t c = static_cast<std::uint64_t>(i) * 3;
      if (u.update_at_post_spike(0.5, gap, rng.uniform(c), rng.uniform(c + 1),
                                 rng.uniform(c + 2)) > 0.5) {
        ++applied;
      }
    }
    const double expected = 0.6 * std::exp(-gap / 25.0);
    EXPECT_NEAR(static_cast<double>(applied) / n, expected, 0.01)
        << "gap " << gap;
  }
}

// ---------------------------------------------------------------------------
// Poisson encoder: successive steps are uncorrelated (the memorylessness the
// stochastic STDP analysis assumes).
TEST(EncoderStatistics, StepsAreUncorrelated) {
  PoissonEncoder enc(1, 21);
  enc.set_uniform_rate(300.0);  // p = 0.3 per ms
  const int n = 20000;
  int s_prev = enc.spikes_at(0, 0, 1.0) ? 1 : 0;
  int both = 0;
  int first = 0;
  for (int s = 1; s < n; ++s) {
    const int cur = enc.spikes_at(0, static_cast<StepIndex>(s), 1.0) ? 1 : 0;
    first += s_prev;
    both += s_prev & cur;
    s_prev = cur;
  }
  // P(spike | spike at previous step) should equal the marginal p = 0.3.
  const double conditional = static_cast<double>(both) / first;
  EXPECT_NEAR(conditional, 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the complete experiment (data generation,
// training, labelling, evaluation) is a pure function of the seeds.
TEST(EndToEndDeterminism, IdenticalRunsProduceIdenticalAccuracy) {
  set_log_level(LogLevel::kWarn);
  auto run_once = [] {
    const LabeledDataset data = make_synthetic_digits(
        {.train_count = 50, .test_count = 60, .seed = 17});
    ExperimentSpec spec;
    spec.neuron_count = 25;
    spec.train_images = 50;
    spec.label_images = 30;
    spec.eval_images = 30;
    spec.t_label_ms = 150.0;
    spec.t_infer_ms = 150.0;
    spec.seed = 5;
    return run_learning_experiment(spec, data);
  };
  const ExperimentResult a = run_once();
  const ExperimentResult b = run_once();
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.labelled_neurons, b.labelled_neurons);
  EXPECT_DOUBLE_EQ(a.conductance_contrast, b.conductance_contrast);
  EXPECT_DOUBLE_EQ(a.bottom_fraction, b.bottom_fraction);
}

TEST(EndToEndDeterminism, DifferentSeedsProduceDifferentNetworks) {
  set_log_level(LogLevel::kWarn);
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 30, .test_count = 30, .seed = 17});
  auto conductance_for_seed = [&](std::uint64_t seed) {
    ExperimentSpec spec;
    spec.neuron_count = 15;
    spec.train_images = 20;
    spec.seed = seed;
    WtaNetwork net(spec.network_config());
    UnsupervisedTrainer trainer(net, spec.trainer_config());
    trainer.train(data.train.head(20));
    return net.conductance().to_vector();
  };
  EXPECT_NE(conductance_for_seed(1), conductance_for_seed(2));
}

// ---------------------------------------------------------------------------
// Learning monotone-ish in data: more training images should not make the
// final map contrast collapse (regression guard for the depression-runaway
// failure mode found during calibration).
TEST(LearningStability, ContrastSurvivesLongerTraining) {
  set_log_level(LogLevel::kWarn);
  const LabeledDataset data = make_synthetic_digits(
      {.train_count = 160, .test_count = 30, .seed = 23});
  auto contrast_after = [&](std::size_t images) {
    ExperimentSpec spec;
    spec.neuron_count = 20;
    spec.train_images = images;
    spec.seed = 9;
    WtaNetwork net(spec.network_config());
    UnsupervisedTrainer trainer(net, spec.trainer_config());
    trainer.train(data.train.head(images));
    double total = 0.0;
    for (NeuronIndex j = 0; j < net.neuron_count(); ++j) {
      total += quartile_contrast(net.conductance().row(j));
    }
    return total / static_cast<double>(net.neuron_count());
  };
  const double short_run = contrast_after(40);
  const double long_run = contrast_after(160);
  EXPECT_GT(long_run, 0.5 * short_run)
      << "contrast must not collapse with continued training";
  EXPECT_GT(long_run, 0.05);
}

// ---------------------------------------------------------------------------
// The Table II mechanism, pinned end to end: at Q0.2 with truncation the
// deterministic float ΔG (≈0.01-0.05 after learning-rate scaling) is below
// one 0.25 quantum, so training must leave the conductance matrix bitwise
// unchanged — chance accuracy is structural, not statistical. The stochastic
// rule applies full quanta through its eq. 6/7 gates and must keep learning
// under the identical configuration.
TEST(TableTwoMechanism, DeterministicTruncationFreezesLearning) {
  set_log_level(LogLevel::kWarn);
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 12, .test_count = 4, .seed = 41});
  for (const StdpKind kind :
       {StdpKind::kDeterministic, StdpKind::kStochastic}) {
    WtaConfig cfg = WtaConfig::from_table1(LearningOption::k2Bit, kind, 20);
    cfg.stdp.rounding = RoundingMode::kTruncate;
    cfg.seed = 6;
    WtaNetwork net(cfg);
    const auto before = net.conductance().to_vector();
    UnsupervisedTrainer trainer(net, TrainerConfig::from_table1(
                                         LearningOption::k2Bit));
    trainer.train(data.train);
    ASSERT_GT(net.total_spikes(), 0u) << "network must be active";
    if (kind == StdpKind::kDeterministic) {
      EXPECT_EQ(net.conductance().to_vector(), before)
          << "truncated deterministic updates must all round to zero";
    } else {
      EXPECT_NE(net.conductance().to_vector(), before)
          << "stochastic full-quantum updates must keep learning";
    }
  }
}

// ---------------------------------------------------------------------------
// The LIF population cannot exceed one spike per step per neuron: firing
// rate is bounded by 1000/dt Hz regardless of drive.
TEST(RateBounds, LifRateBoundedByStepRate) {
  LifPopulation pop(1, paper_lif_parameters());
  std::vector<double> current(1, 1e9);
  std::vector<NeuronIndex> spikes;
  int count = 0;
  for (int t = 1; t <= 1000; ++t) {
    pop.step(current, t, 1.0, spikes);
    count += static_cast<int>(spikes.size());
  }
  EXPECT_LE(count, 1000);
  EXPECT_GT(count, 400) << "astronomical drive should fire nearly every step";
}

// ---------------------------------------------------------------------------
// Classifier output domain over a random network and arbitrary images.
TEST(ClassifierDomain, PredictionsAlwaysInRange) {
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 20);
  cfg.seed = 31;
  WtaNetwork net(cfg);
  std::vector<int> labels(20);
  for (std::size_t j = 0; j < 20; ++j) {
    labels[j] = static_cast<int>(j % 10);
  }
  SnnClassifier classifier(net, labels, 10, PixelFrequencyMap(1.0, 22.0),
                           100.0);
  SequentialRng rng(3);
  for (int i = 0; i < 5; ++i) {
    const Image img = render_digit(static_cast<Label>(i * 2), 0.05, rng);
    const int p = classifier.predict(img);
    EXPECT_GE(p, -1);
    EXPECT_LT(p, 10);
  }
}

// ---------------------------------------------------------------------------
// Sparse event path (cpu_sparse). Lazy STDP is a pure *scheduling* change:
// deferring the per-synapse updates (catch-up on pre spike + presentation-end
// flush) must leave the final conductance matrix bitwise-identical to the
// eager per-post-spike row sweep on the same backend — the contract
// documented at WtaConfig::lazy_stdp.
TEST(SparseLazyStdp, DeferredFlushBitwiseMatchesEager) {
  set_log_level(LogLevel::kWarn);
  auto run = [](bool lazy) {
    WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                           StdpKind::kStochastic, 20);
    cfg.backend = "cpu_sparse";
    cfg.lazy_stdp = lazy;
    cfg.seed = 7;
    WtaNetwork net(cfg);
    const PixelFrequencyMap freq(1.0, 22.0);
    SequentialRng rng(3);
    std::vector<double> rates;
    for (int i = 0; i < 10; ++i) {
      const Image img = render_digit(static_cast<Label>(i % 5), 0.05, rng);
      freq.frequencies(img.pixels, rates);
      net.present(rates, 150.0, /*learn=*/true);
    }
    return net.conductance().to_vector();
  };
  const auto lazy = run(true);
  const auto eager = run(false);
  ASSERT_EQ(lazy.size(), eager.size());
  for (std::size_t i = 0; i < lazy.size(); ++i) {
    ASSERT_EQ(lazy[i], eager[i]) << "synapse " << i << " diverged";
  }
}

// The deferred updates must respect the same clamp domain as the eager path:
// every conductance inside [g_min, effective_g_max] after training, for both
// the fp32 and a quantized Table I row (the quantized row exercises the
// full-quantum flush branch).
TEST(SparseLazyStdp, ConductanceStaysInBounds) {
  set_log_level(LogLevel::kWarn);
  for (const LearningOption option :
       {LearningOption::kFloat32, LearningOption::k2Bit}) {
    WtaConfig cfg =
        WtaConfig::from_table1(option, StdpKind::kStochastic, 15);
    cfg.backend = "cpu_sparse";
    cfg.seed = 11;
    WtaNetwork net(cfg);
    const StdpUpdater updater(cfg.stdp);
    const PixelFrequencyMap freq(1.0, 22.0);
    SequentialRng rng(5);
    std::vector<double> rates;
    for (int i = 0; i < 8; ++i) {
      const Image img = render_digit(static_cast<Label>(i % 4), 0.05, rng);
      freq.frequencies(img.pixels, rates);
      net.present(rates, 150.0, /*learn=*/true);
    }
    ASSERT_GT(net.total_spikes(), 0u) << "network must be active";
    for (const double g : net.conductance().to_vector()) {
      ASSERT_GE(g, cfg.stdp.magnitude.g_min);
      ASSERT_LE(g, updater.effective_g_max());
    }
  }
}

// The regular encoder's event list is documented bitwise-identical to its
// per-step dense queries — phase arithmetic on both paths, same rounding.
TEST(SparseEvents, RegularEventListMatchesDenseStepForStep) {
  auto backend = make_backend("cpu_sparse");
  StatePool pool(backend.get(), StatePool::Geometry{1, 48});
  RegularEncoder enc(pool, /*seed=*/21, /*randomize_phase=*/true);
  std::vector<double> rates(48);
  for (std::size_t c = 0; c < rates.size(); ++c) {
    rates[c] = static_cast<double>(c) * 2.5;  // includes silent channel 0
  }
  enc.set_rates(rates);
  ASSERT_TRUE(enc.supports_events());

  constexpr StepIndex kSteps = 400;
  constexpr TimeMs kDt = 1.0;
  SpikeEventList events;
  enc.build_events(kSteps, kDt, events);
  events.index_by_step(kSteps);

  std::vector<ChannelIndex> dense;
  for (StepIndex s = 0; s < kSteps; ++s) {
    enc.active_channels(s, kDt, dense);
    std::sort(dense.begin(), dense.end());
    const auto sparse = events.at_step(s);
    std::vector<ChannelIndex> sparse_sorted(sparse.begin(), sparse.end());
    std::sort(sparse_sorted.begin(), sparse_sorted.end());
    ASSERT_EQ(sparse_sorted, dense) << "step " << s;
  }
}

// The Poisson event list uses geometric inter-spike sampling with
// presentation-forked counter draws: rebuilding the same presentation must
// reproduce the list exactly, and advancing the presentation index must
// change it (fresh fork, fresh trains).
TEST(SparseEvents, PoissonEventListIsDeterministicPerPresentation) {
  auto backend = make_backend("cpu_sparse");
  StatePool pool(backend.get(), StatePool::Geometry{1, 32});
  PoissonEncoder enc(pool, /*seed=*/9);
  enc.set_uniform_rate(40.0);
  ASSERT_TRUE(enc.supports_events());

  constexpr StepIndex kSteps = 300;
  constexpr TimeMs kDt = 1.0;
  auto history_snapshot = [&](SpikeEventList& ev) {
    std::vector<std::vector<std::uint32_t>> all;
    for (ChannelIndex c = 0; c < 32; ++c) {
      const auto h = ev.channel_history(c);
      all.emplace_back(h.begin(), h.end());
    }
    return all;
  };

  enc.set_presentation(4);
  SpikeEventList first;
  enc.build_events(kSteps, kDt, first);
  ASSERT_GT(first.total(), 0u);
  const auto first_hist = history_snapshot(first);

  enc.set_presentation(4);
  SpikeEventList again;
  enc.build_events(kSteps, kDt, again);
  EXPECT_EQ(first_hist, history_snapshot(again))
      << "same presentation must replay identical trains";

  enc.set_presentation(5);
  SpikeEventList next;
  enc.build_events(kSteps, kDt, next);
  EXPECT_NE(first_hist, history_snapshot(next))
      << "a new presentation must fork fresh trains";
}

// ---------------------------------------------------------------------------
// Layer-graph kernel properties (src/pss/graph/): pool semantics over random
// flag planes, and conv-accumulate equivariance under filter permutation.

TEST(GraphInvariant, PoolFlagSetIffWindowHasSpike) {
  SequentialRng rng(99);
  Engine engine(3);
  auto backend = make_backend("cpu");
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t channels = 1 + rng.below(3);
    const std::size_t in_w = 3 + rng.below(9);
    const std::size_t in_h = 3 + rng.below(9);
    const std::size_t window = 2 + rng.below(2);
    const std::size_t out_w = (in_w + window - 1) / window;
    const std::size_t out_h = (in_h + window - 1) / window;
    const std::size_t steps = 1 + rng.below(4);

    std::vector<std::uint8_t> spiked(channels * in_h * in_w);
    for (auto& s : spiked) s = rng.uniform() < 0.3 ? 1 : 0;
    std::vector<std::uint8_t> pooled(channels * out_h * out_w, 0);
    std::vector<std::uint32_t> counts(pooled.size(), 0);

    PoolForwardArgs args;
    args.spiked = spiked;
    args.channels = channels;
    args.in_width = in_w;
    args.in_height = in_h;
    args.window = window;
    args.out_width = out_w;
    args.out_height = out_h;
    args.pooled = pooled;
    args.pooled_counts = counts;
    for (std::size_t s = 0; s < steps; ++s) {
      backend->kernels().pool_forward(engine, args);
    }

    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t py = 0; py < out_h; ++py) {
        for (std::size_t px = 0; px < out_w; ++px) {
          bool any = false;
          for (std::size_t y = py * window;
               y < std::min(in_h, (py + 1) * window); ++y) {
            for (std::size_t x = px * window;
                 x < std::min(in_w, (px + 1) * window); ++x) {
              any = any || spiked[(c * in_h + y) * in_w + x] != 0;
            }
          }
          const std::size_t u = (c * out_h + py) * out_w + px;
          ASSERT_EQ(pooled[u] != 0, any)
              << "trial " << trial << " unit " << u;
          // Counts accumulate once per step the window fired, and never
          // exceed the step count.
          ASSERT_EQ(counts[u], any ? steps : 0u)
              << "trial " << trial << " unit " << u;
        }
      }
    }
  }
}

TEST(GraphInvariant, ConvAccumulateCommutesWithFilterPermutation) {
  // Permuting the filter bank permutes the output planes and nothing else:
  // currents(perm(F))[p(f), y, x] == currents(F)[f, y, x] bitwise, because
  // each output unit reads only its own filter's taps.
  constexpr std::size_t kFilters = 4, kChannels = 2, kKernel = 3, kStride = 1;
  constexpr std::size_t kInW = 9, kInH = 8;
  constexpr std::size_t kOutW = (kInW - kKernel) / kStride + 1;
  constexpr std::size_t kOutH = (kInH - kKernel) / kStride + 1;
  constexpr std::size_t kPlane = kChannels * kKernel * kKernel;

  std::vector<double> filters(kFilters * kPlane);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    filters[i] = static_cast<double>((i * 41 % 19)) / 16.0 - 0.5;
  }
  std::vector<ChannelIndex> active;
  for (std::size_t p = 0; p < kChannels * kInH * kInW; p += 5) {
    active.push_back(static_cast<ChannelIndex>(p));
  }
  const std::size_t perm[kFilters] = {2, 0, 3, 1};
  std::vector<double> permuted(filters.size());
  for (std::size_t f = 0; f < kFilters; ++f) {
    std::copy_n(filters.begin() + static_cast<std::ptrdiff_t>(f * kPlane),
                kPlane,
                permuted.begin() + static_cast<std::ptrdiff_t>(perm[f] * kPlane));
  }

  Engine engine(2);
  auto backend = make_backend("cpu");
  auto run = [&](std::span<const double> bank) {
    std::vector<double> currents(kFilters * kOutH * kOutW, 0.0);
    ConvAccumulateArgs args;
    args.filters = bank;
    args.filter_count = kFilters;
    args.in_channels = kChannels;
    args.kernel = kKernel;
    args.stride = kStride;
    args.in_width = kInW;
    args.in_height = kInH;
    args.out_width = kOutW;
    args.out_height = kOutH;
    args.active_pre = active;
    args.amplitude = 1.5;
    args.decay_factor = 0.0;
    args.currents = currents;
    backend->kernels().conv_accumulate(engine, args);
    return currents;
  };

  const std::vector<double> base = run(filters);
  const std::vector<double> shuffled = run(permuted);
  for (std::size_t f = 0; f < kFilters; ++f) {
    for (std::size_t u = 0; u < kOutH * kOutW; ++u) {
      ASSERT_EQ(shuffled[perm[f] * kOutH * kOutW + u],
                base[f * kOutH * kOutW + u])
          << "filter " << f << " unit " << u;
    }
  }
}

}  // namespace
}  // namespace pss
