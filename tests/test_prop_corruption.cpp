// Bit-flip corruption matrices for the stacked model ("PSSSNAP2") and
// multi-layer checkpoint ("PSSCKPT1" v2) loaders (ISSUE satellite 2) —
// extending test_robust's v1 matrix to the formats the layer-graph stack
// writes. Every byte of each artifact is XOR-flipped in turn and every
// truncation length tried: the loaders must answer each with a structured
// pss::Error (CRC mismatch, magic/version/bounds violation) — never a
// crash, a bad_alloc from a corrupt count, or a silently-loaded wrong
// model. The models under test are prop-generated so the matrices cover
// varying geometry, not one golden file.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/graph/graph_snapshot.hpp"
#include "pss/prop/check.hpp"
#include "pss/prop/generators.hpp"
#include "pss/robust/checkpoint.hpp"

namespace pss {
namespace {

using prop::Source;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void flip_byte(const std::string& path, std::uint64_t offset,
               unsigned char mask = 0xFF) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// How one load of a deliberately damaged file ended.
enum class LoadOutcome { kLoaded, kStructuredError, kOther };

template <typename Fn>
LoadOutcome classify_load(Fn&& fn, std::string* detail) {
  try {
    fn();
    return LoadOutcome::kLoaded;
  } catch (const Error& e) {
    *detail = e.what();
    return LoadOutcome::kStructuredError;
  } catch (const std::exception& e) {
    *detail = std::string("foreign exception: ") + e.what();
    return LoadOutcome::kOther;
  } catch (...) {
    *detail = "non-standard exception";
    return LoadOutcome::kOther;
  }
}

/// Runs the full flip + truncation matrix of `loader` over the good bytes
/// at `good_path`. `stride` > 1 thins very large files; every byte of the
/// header region [0, 32) is always covered.
template <typename Fn>
void run_matrix(const std::string& good_path, const std::string& label,
                Fn&& loader) {
  const std::string good = read_file(good_path);
  ASSERT_FALSE(good.empty());
  const std::uint64_t size = good.size();
  const std::uint64_t stride = size <= 4096 ? 1 : size / 2048;
  const std::string bad_path = temp_path("pss_prop_matrix_bad.bin");

  std::uint64_t flips = 0;
  for (std::uint64_t offset = 0; offset < size;
       offset += (offset < 32 ? 1 : stride)) {
    write_file(bad_path, good);
    flip_byte(bad_path, offset);
    std::string detail;
    const LoadOutcome outcome = classify_load([&] { loader(bad_path); },
                                              &detail);
    EXPECT_EQ(outcome, LoadOutcome::kStructuredError)
        << label << ": flipped byte " << offset << " of " << size << " -> "
        << (outcome == LoadOutcome::kLoaded ? "silently loaded" : detail);
    ++flips;
  }
  EXPECT_GE(flips, 32u);

  for (std::uint64_t keep = 0; keep < size;
       keep += (keep < 32 ? 1 : stride)) {
    write_file(bad_path, good.substr(0, keep));
    std::string detail;
    const LoadOutcome outcome = classify_load([&] { loader(bad_path); },
                                              &detail);
    EXPECT_EQ(outcome, LoadOutcome::kStructuredError)
        << label << ": truncated to " << keep << " of " << size
        << " bytes -> "
        << (outcome == LoadOutcome::kLoaded ? "silently loaded" : detail);
  }
  std::filesystem::remove(bad_path);
}

/// A prop-generated stacked model: varying arch string, block geometry and
/// conductance payloads (deterministic — drawn from the fixed (seed, case)).
graph::GraphModel gen_model(std::uint64_t case_index) {
  Source s = prop::case_source("corruption_model", 0x50a9, case_index);
  graph::GraphModel model;
  model.input = {1, 8, 8};
  const std::uint64_t blocks = s.range(2, 3);  // >= 2 keeps the format SNAP2
  std::string arch = "encode:peak=" + std::to_string(s.range(40, 200));
  std::size_t inputs = 64;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    NetworkSnapshot block;
    block.neuron_count = static_cast<std::uint32_t>(s.range(2, 6));
    block.input_channels = static_cast<std::uint32_t>(inputs);
    block.g_min = 0.0;
    block.g_max = 1.0;
    for (std::size_t i = 0; i < block.neuron_count * inputs; ++i) {
      block.conductance.push_back(s.real(0.0, 1.0));
    }
    for (std::size_t i = 0; i < block.neuron_count; ++i) {
      block.theta.push_back(s.real(0.0, 0.5));
    }
    arch += ";wta:neurons=" + std::to_string(block.neuron_count);
    inputs = block.neuron_count;
    model.blocks.push_back(std::move(block));
  }
  model.arch = arch;
  for (std::size_t i = 0; i < model.blocks.back().neuron_count; ++i) {
    model.labels.push_back(static_cast<std::int32_t>(s.bits(10)) - 1);
  }
  return model;
}

TEST(PropCorruption, StackedModelRoundTripsUnharmed) {
  const std::string path = temp_path("pss_prop_snap2_good.bin");
  const graph::GraphModel model = gen_model(0);
  graph::save_graph_model(path, model);
  const graph::GraphModel back = graph::load_graph_model(path);
  EXPECT_EQ(back.arch, model.arch);
  ASSERT_EQ(back.blocks.size(), model.blocks.size());
  for (std::size_t b = 0; b < model.blocks.size(); ++b) {
    EXPECT_EQ(back.blocks[b].conductance, model.blocks[b].conductance);
    EXPECT_EQ(back.blocks[b].theta, model.blocks[b].theta);
  }
  EXPECT_EQ(back.labels, model.labels);
  std::filesystem::remove(path);
}

TEST(PropCorruption, StackedModelFlipAndTruncationMatrix) {
  for (std::uint64_t c = 0; c < 3; ++c) {
    const std::string path = temp_path("pss_prop_snap2_matrix.bin");
    graph::save_graph_model(path, gen_model(c));
    run_matrix(path, "PSSSNAP2 case " + std::to_string(c),
               [](const std::string& p) { graph::load_graph_model(p); });
    std::filesystem::remove(path);
  }
}

/// A prop-generated v2 stacked checkpoint over the same geometry vocabulary.
robust::StackedCheckpoint gen_checkpoint(std::uint64_t case_index) {
  Source s = prop::case_source("corruption_ckpt", 0xc4c7, case_index);
  robust::StackedCheckpoint cp;
  cp.base.run_id = s.bits(0xffff);
  cp.base.seed = s.bits(0xffff);
  cp.base.images_done = s.bits(500);
  cp.base.presentation_cursor = cp.base.images_done;
  cp.base.now_ms = s.real(0.0, 1e4);
  cp.base.neuron_count = static_cast<std::uint32_t>(s.range(2, 6));
  // Divisible by 4: the frame shape below is 1 × 4 × (channels / 4).
  cp.base.input_channels = static_cast<std::uint32_t>(4 * s.range(1, 4));
  cp.base.g_min = 0.0;
  cp.base.g_max = 1.0;
  for (std::size_t i = 0;
       i < cp.base.neuron_count * cp.base.input_channels; ++i) {
    cp.base.conductance.push_back(s.real(0.0, 1.0));
  }
  for (std::size_t i = 0; i < cp.base.neuron_count; ++i) {
    cp.base.theta.push_back(s.real(0.0, 0.5));
  }
  const std::uint32_t second_block =
      static_cast<std::uint32_t>(s.range(2, 5));
  cp.arch = "wta:neurons=" + std::to_string(cp.base.neuron_count) +
            ";wta:neurons=" + std::to_string(second_block);
  cp.input_channels = 1;
  cp.input_height = 4;
  cp.input_width = cp.base.input_channels / 4;
  robust::StackedCheckpoint::BlockState block;
  block.neuron_count = second_block;
  block.input_channels = cp.base.neuron_count;
  block.g_min = 0.0;
  block.g_max = 1.0;
  for (std::size_t i = 0; i < block.neuron_count * block.input_channels;
       ++i) {
    block.conductance.push_back(s.real(0.0, 1.0));
  }
  for (std::size_t i = 0; i < block.neuron_count; ++i) {
    block.theta.push_back(s.real(0.0, 0.5));
  }
  cp.blocks.push_back(std::move(block));
  for (std::uint32_t i = 0; i < second_block; ++i) {
    cp.labels.push_back(static_cast<std::int32_t>(s.bits(10)) - 1);
  }
  return cp;
}

TEST(PropCorruption, StackedCheckpointRoundTripsUnharmed) {
  const std::string path = temp_path("pss_prop_ckpt2_good.bin");
  const robust::StackedCheckpoint cp = gen_checkpoint(0);
  robust::save_stacked_checkpoint(path, cp);
  const robust::StackedCheckpoint back =
      robust::load_stacked_checkpoint(path);
  EXPECT_EQ(back.arch, cp.arch);
  EXPECT_EQ(back.base.conductance, cp.base.conductance);
  EXPECT_EQ(back.base.theta, cp.base.theta);
  ASSERT_EQ(back.blocks.size(), 1u);
  EXPECT_EQ(back.blocks[0].conductance, cp.blocks[0].conductance);
  EXPECT_EQ(back.labels, cp.labels);
  std::filesystem::remove(path);
}

TEST(PropCorruption, StackedCheckpointFlipAndTruncationMatrix) {
  for (std::uint64_t c = 0; c < 3; ++c) {
    const std::string path = temp_path("pss_prop_ckpt2_matrix.bin");
    robust::save_stacked_checkpoint(path, gen_checkpoint(c));
    run_matrix(path, "PSSCKPT1v2 case " + std::to_string(c),
               [](const std::string& p) {
                 robust::load_stacked_checkpoint(p);
               });
    std::filesystem::remove(path);
  }
}

/// The unified model reader sniffs checkpoints too — the same damaged
/// checkpoint bytes must fail through that entry point as well.
TEST(PropCorruption, UnifiedReaderRejectsDamagedCheckpoints) {
  const std::string path = temp_path("pss_prop_unified_matrix.bin");
  robust::save_stacked_checkpoint(path, gen_checkpoint(1));
  run_matrix(path, "unified reader over PSSCKPT1v2",
             [](const std::string& p) { graph::load_graph_model(p); });
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pss
