// Layer-graph tests (src/pss/graph/):
//  * the one-layer contract — a single-WTA NetworkGraph is bitwise the
//    standalone WtaNetwork: same presentation outputs, same captured state,
//    byte-identical legacy snapshot files;
//  * spec grammar — parse ∘ canonical roundtrips, shape computation;
//  * determinism — stacked presentations are worker-count invariant and a
//    pure function of the presentation index (replay);
//  * layer-wise training — conv→pool→WTA beats chance on SyntheticDigits
//    and a Gabor front-end beats chance on the temporal-gesture workload;
//  * serialization — PSSSNAP2 and checkpoint-v2 roundtrips, the unified
//    model reader, and a committed pre-graph v1 checkpoint fixture that
//    must roundtrip bitwise through the stacked reader/writer.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/data/temporal_gestures.hpp"
#include "pss/engine/launch.hpp"
#include "pss/graph/filter_bank.hpp"
#include "pss/graph/graph_snapshot.hpp"
#include "pss/graph/graph_trainer.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/graph/network_graph.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/robust/checkpoint.hpp"

namespace pss {
namespace {

using graph::GraphConfig;
using graph::GraphModel;
using graph::GraphResult;
using graph::NetworkGraph;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

WtaConfig base_config(std::uint64_t seed = 5) {
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic,
                             20);
  cfg.input_channels = 36;
  cfg.seed = seed;
  return cfg;
}

std::vector<double> test_rates(std::size_t n, std::uint64_t salt) {
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = static_cast<double>((salt * 31 + i * 7) % 23);
  }
  return rates;
}

// ------------------------------------------------- one-layer bitwise contract

TEST(GraphSingleWta, PresentationsMatchStandaloneNetworkBitwise) {
  const WtaConfig cfg = base_config();
  WtaNetwork net(cfg);
  NetworkGraph g(graph::single_wta_graph(cfg));
  ASSERT_EQ(g.block_count(), 1u);
  ASSERT_EQ(g.input_units(), cfg.input_channels);

  for (std::uint64_t k = 0; k < 6; ++k) {
    const std::vector<double> rates = test_rates(cfg.input_channels, k);
    const bool learn = k % 2 == 0;
    const PresentationResult a = net.present(rates, 150.0, learn);
    const GraphResult b = g.present(rates, 150.0, learn ? 0 : -1);
    ASSERT_EQ(a.spike_counts, b.spike_counts) << "presentation " << k;
    ASSERT_EQ(a.input_spikes, b.input_spikes) << "presentation " << k;
  }

  // Learned state is bitwise identical too.
  const NetworkSnapshot sa = NetworkSnapshot::capture(net);
  const NetworkSnapshot sb = NetworkSnapshot::capture(g.block(0));
  EXPECT_EQ(sa.conductance, sb.conductance);
  EXPECT_EQ(sa.theta, sb.theta);
}

TEST(GraphSingleWta, ModelFileIsByteIdenticalToLegacySnapshot) {
  const WtaConfig cfg = base_config(11);
  WtaNetwork net(cfg);
  NetworkGraph g(graph::single_wta_graph(cfg));
  const std::vector<double> rates = test_rates(cfg.input_channels, 3);
  net.present(rates, 100.0, true);
  g.present(rates, 100.0, 0);

  std::vector<int> labels(cfg.neuron_count);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  g.set_neuron_labels(labels);

  const std::string legacy = temp_path("pss_graph_legacy.bin");
  const std::string via_graph = temp_path("pss_graph_single.bin");
  save_snapshot(legacy, NetworkSnapshot::capture(net, &labels));
  const GraphModel model = GraphModel::capture(g);
  EXPECT_TRUE(model.single_layer());
  graph::save_graph_model(via_graph, model);
  EXPECT_EQ(read_file(legacy), read_file(via_graph));

  // And the unified reader restores it into an equivalent graph.
  const GraphModel back = graph::load_graph_model(via_graph);
  EXPECT_TRUE(back.single_layer());
  EXPECT_EQ(back.blocks.front().conductance,
            model.blocks.front().conductance);
  EXPECT_EQ(back.labels, model.labels);
}

// ----------------------------------------------------------- spec grammar

TEST(GraphSpec, CanonicalSpecRoundTrips) {
  const WtaConfig base = base_config();
  const std::string spec =
      "encode:peak=180,temporal=diff;conv:filters=6,kernel=5,bank=gabor;"
      "pool:window=2;wta:neurons=40,gain=2.5;wta:neurons=20;"
      "readout:inhibition=0";
  const GraphConfig cfg = graph::graph_config_from_spec(spec, base);
  EXPECT_TRUE(cfg.encode.temporal_diff);
  EXPECT_EQ(cfg.layers.size(), 4u);
  EXPECT_FALSE(cfg.readout.inhibition);
  const std::string canon = graph::canonical_layers_spec(cfg);
  const GraphConfig again = graph::graph_config_from_spec(canon, base);
  EXPECT_EQ(graph::canonical_layers_spec(again), canon);
}

TEST(GraphSpec, ComputesStackShapes) {
  const WtaConfig base = base_config();
  GraphConfig cfg = graph::graph_config_from_spec(
      "conv:filters=8,kernel=5;pool:window=2;wta:neurons=50", base);
  cfg.input = graph::LayerShape{1, 28, 28};
  const auto shapes = graph::compute_shapes(cfg);
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[1], (graph::LayerShape{8, 24, 24}));
  EXPECT_EQ(shapes[2], (graph::LayerShape{8, 12, 12}));
  EXPECT_EQ(shapes[3], (graph::LayerShape{1, 1, 50}));
}

TEST(GraphSpec, FilterBanksAreZeroMeanUnitNorm) {
  for (const graph::FilterBank bank :
       {graph::FilterBank::kDog, graph::FilterBank::kGabor}) {
    const std::vector<double> filters = graph::make_filter_bank(bank, 6, 5, 1);
    ASSERT_EQ(filters.size(), 6u * 5u * 5u);
    for (std::size_t f = 0; f < 6; ++f) {
      double sum = 0.0, norm = 0.0;
      for (std::size_t i = 0; i < 5 * 5; ++i) {
        const double w = filters[f * 5 * 5 + i];
        sum += w;
        norm += w * w;
      }
      EXPECT_NEAR(sum, 0.0, 1e-9) << "filter " << f;
      EXPECT_NEAR(norm, 1.0, 1e-9) << "filter " << f;
    }
  }
}

TEST(GraphSpec, TwoChannelFiltersAreOpponentPairs) {
  // Temporal-diff ON/OFF inputs get opponent weighting: the OFF plane is
  // the negated ON plane, so the filter reads the signed change pattern.
  const std::vector<double> filters =
      graph::make_filter_bank(graph::FilterBank::kGabor, 4, 5, 2);
  ASSERT_EQ(filters.size(), 4u * 2u * 5u * 5u);
  for (std::size_t f = 0; f < 4; ++f) {
    const double* on = filters.data() + f * 2 * 25;
    const double* off = on + 25;
    for (std::size_t i = 0; i < 25; ++i) {
      EXPECT_EQ(off[i], -on[i]) << "filter " << f << " tap " << i;
    }
  }
}

// ------------------------------------------------------------- determinism

GraphConfig stacked_config(const std::string& backend, std::uint64_t seed) {
  WtaConfig base = base_config(seed);
  base.backend = backend;
  GraphConfig cfg = graph::graph_config_from_spec(
      "conv:filters=4,kernel=7,stride=3;pool:window=2;wta:neurons=30", base);
  cfg.input = graph::LayerShape{1, 28, 28};
  return cfg;
}

Image test_frame(std::uint64_t salt) {
  Image img;
  img.width = 28;
  img.height = 28;
  img.pixels.resize(28 * 28);
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    img.pixels[i] =
        static_cast<std::uint8_t>((salt * 37 + i * 13) % 256);
  }
  return img;
}

TEST(GraphDeterminism, StackedPresentationsAreWorkerCountInvariant) {
  const GraphConfig cfg = stacked_config("cpu", 9);
  Engine serial(1);
  NetworkGraph a(cfg, &serial);
  Engine pooled(4);
  NetworkGraph b(cfg, &pooled);
  for (std::uint64_t k = 0; k < 4; ++k) {
    const GraphResult ra = a.present_image(test_frame(k), 80.0, 0);
    const GraphResult rb = b.present_image(test_frame(k), 80.0, 0);
    ASSERT_EQ(ra.spike_counts, rb.spike_counts) << k;
    ASSERT_EQ(ra.input_spikes, rb.input_spikes) << k;
    ASSERT_EQ(ra.layer_spikes, rb.layer_spikes) << k;
  }
  const NetworkSnapshot sa = NetworkSnapshot::capture(a.block(0));
  const NetworkSnapshot sb = NetworkSnapshot::capture(b.block(0));
  EXPECT_EQ(sa.conductance, sb.conductance);
}

TEST(GraphDeterminism, PresentationIsPureFunctionOfIndex) {
  const GraphConfig cfg = stacked_config("cpu", 13);
  NetworkGraph g(cfg);
  const Image frame = test_frame(5);
  g.set_presentation_index(41);
  const GraphResult first = g.present_image(frame, 60.0, -1);
  g.set_presentation_index(41);
  const GraphResult replay = g.present_image(frame, 60.0, -1);
  EXPECT_EQ(first.spike_counts, replay.spike_counts);
  EXPECT_EQ(first.input_spikes, replay.input_spikes);
  EXPECT_EQ(first.layer_spikes, replay.layer_spikes);
}

TEST(GraphDeterminism, SequencePresentationsReplayBitwise) {
  WtaConfig base = base_config(17);
  GraphConfig cfg = graph::graph_config_from_spec(
      "encode:temporal=diff;conv:filters=4,kernel=7,stride=3;wta:neurons=24",
      base);
  cfg.input = graph::LayerShape{1, 28, 28};
  NetworkGraph g(cfg);
  std::vector<Image> frames;
  for (std::uint64_t f = 0; f < 4; ++f) frames.push_back(test_frame(f));
  g.set_presentation_index(7);
  const GraphResult first = g.present_sequence(frames, 20.0, -1);
  g.set_presentation_index(7);
  const GraphResult replay = g.present_sequence(frames, 20.0, -1);
  EXPECT_EQ(first.spike_counts, replay.spike_counts);
  EXPECT_EQ(first.input_spikes, replay.input_spikes);
}

// -------------------------------------------------------- layer-wise training

TEST(GraphTraining, StackedDigitsBeatChance) {
  SyntheticConfig synth;
  synth.train_count = 120;
  synth.test_count = 120;
  synth.seed = 7;
  const LabeledDataset data = make_synthetic_digits(synth);

  WtaConfig base = base_config(3);
  GraphConfig cfg = graph::graph_config_from_spec(
      "conv:filters=6,kernel=7,stride=2;pool:window=2;wta:neurons=80", base);
  cfg.input = graph::LayerShape{1, 28, 28};
  NetworkGraph g(cfg);
  graph::GraphTrainerConfig tc;
  tc.t_learn_ms = 150.0;
  tc.t_readout_ms = 150.0;
  graph::GraphTrainer trainer(g, tc);
  trainer.train(data.train.head(120));
  const auto [label_set, eval_set] = data.labelling_split(60);
  const std::size_t labelled = trainer.label(label_set);
  EXPECT_GT(labelled, 0u);
  const graph::GraphEvaluation eval = trainer.evaluate(eval_set.head(60));
  ASSERT_EQ(eval.total, 60u);
  // 10 classes — chance is 10%; the stack must be clearly above it.
  EXPECT_GT(eval.accuracy(), 0.15)
      << eval.correct << "/" << eval.total << " correct, " << eval.abstained
      << " abstained";
}

TEST(GraphTraining, TemporalGesturesBeatChance) {
  GestureConfig gc;
  gc.train_count = 96;
  gc.test_count = 96;
  const GestureDataset data = make_temporal_gestures(gc);
  ASSERT_EQ(data.train.size(), 96u);

  WtaConfig base = base_config(21);
  GraphConfig cfg = graph::graph_config_from_spec(
      "encode:temporal=diff;"
      "conv:filters=6,kernel=7,stride=3,bank=gabor;wta:neurons=80",
      base);
  cfg.input = graph::LayerShape{1, 28, 28};
  NetworkGraph g(cfg);
  graph::GraphTrainerConfig tc;
  tc.frame_ms = 20.0;
  graph::GraphTrainer trainer(g, tc);
  trainer.train(data.train);
  const std::vector<GestureSequence> label_set(data.test.begin(),
                                               data.test.begin() + 48);
  const std::vector<GestureSequence> eval_set(data.test.begin() + 48,
                                              data.test.end());
  trainer.label(label_set);
  const graph::GraphEvaluation eval = trainer.evaluate(eval_set);
  ASSERT_EQ(eval.total, 48u);
  // 8 direction classes — chance is 12.5%; the oriented Gabor front-end
  // over ON/OFF temporal-difference planes must be clearly above it.
  EXPECT_GT(eval.accuracy(), 0.25)
      << eval.correct << "/" << eval.total << " correct, " << eval.abstained
      << " abstained";
}

TEST(GraphTraining, LearnBlockSkipsLaterBlocks) {
  WtaConfig base = base_config(29);
  GraphConfig cfg = graph::graph_config_from_spec(
      "conv:filters=4,kernel=7,stride=3;wta:neurons=30;wta:neurons=16", base);
  cfg.input = graph::LayerShape{1, 28, 28};
  NetworkGraph g(cfg);
  ASSERT_EQ(g.block_count(), 2u);
  const GraphResult r = g.present_image(test_frame(1), 60.0, 0);
  // Training block 0: block 1 never ran, so the result reports block 0's
  // counts and the final stack layer records zero spikes.
  EXPECT_EQ(r.spike_counts.size(), 30u);
  EXPECT_EQ(r.layer_spikes.back(), 0u);
  const GraphResult full = g.present_image(test_frame(1), 60.0, -1);
  EXPECT_EQ(full.spike_counts.size(), 16u);
}

// ------------------------------------------------------------- serialization

NetworkGraph trained_stack(std::uint64_t seed) {
  NetworkGraph g(stacked_config("cpu", seed));
  for (std::uint64_t k = 0; k < 3; ++k) {
    g.present_image(test_frame(k), 60.0, 0);
  }
  std::vector<int> labels(g.output_units(), -1);
  for (std::size_t i = 0; i < labels.size(); i += 2) {
    labels[i] = static_cast<int>(i % 5);
  }
  g.set_neuron_labels(labels);
  return g;
}

TEST(GraphSnapshot, StackedModelRoundTripsThroughSnap2) {
  NetworkGraph g = trained_stack(31);
  const GraphModel model = GraphModel::capture(g);
  EXPECT_FALSE(model.single_layer());

  const std::string path = temp_path("pss_graph_stacked.bin");
  graph::save_graph_model(path, model);
  const GraphModel back = graph::load_graph_model(path);
  EXPECT_EQ(back.arch, model.arch);
  ASSERT_EQ(back.blocks.size(), model.blocks.size());
  for (std::size_t b = 0; b < model.blocks.size(); ++b) {
    EXPECT_EQ(back.blocks[b].conductance, model.blocks[b].conductance) << b;
    EXPECT_EQ(back.blocks[b].theta, model.blocks[b].theta) << b;
  }
  EXPECT_EQ(back.labels, model.labels);

  // Restoring into a fresh graph reproduces the source's presentations.
  NetworkGraph fresh(back.to_config(base_config(31)));
  back.restore(fresh);
  g.set_presentation_index(100);
  fresh.set_presentation_index(100);
  const GraphResult want = g.present_image(test_frame(9), 60.0, -1);
  const GraphResult got = fresh.present_image(test_frame(9), 60.0, -1);
  EXPECT_EQ(want.spike_counts, got.spike_counts);
}

TEST(GraphSnapshot, StackedCheckpointRoundTripsV2) {
  WtaConfig base = base_config(37);
  GraphConfig two_block = graph::graph_config_from_spec(
      "conv:filters=4,kernel=7,stride=3;wta:neurons=30;wta:neurons=16", base);
  two_block.input = graph::LayerShape{1, 28, 28};
  NetworkGraph g(two_block);
  for (std::uint64_t k = 0; k < 3; ++k) {
    g.present_image(test_frame(k), 60.0, 0);
  }
  std::vector<int> labels(g.output_units(), -1);
  for (std::size_t i = 0; i < labels.size(); i += 2) {
    labels[i] = static_cast<int>(i % 5);
  }
  g.set_neuron_labels(labels);
  ASSERT_EQ(g.block_count(), 2u);
  robust::StackedCheckpoint cp;
  cp.base = robust::TrainingCheckpoint::capture(g.block(0));
  cp.base.run_id = 77;
  cp.base.seed = 37;
  cp.arch = graph::canonical_layers_spec(g.config());
  cp.input_channels = 1;
  cp.input_height = 28;
  cp.input_width = 28;
  const NetworkSnapshot b1 = NetworkSnapshot::capture(g.block(1));
  robust::StackedCheckpoint::BlockState extra;
  extra.neuron_count = b1.neuron_count;
  extra.input_channels = b1.input_channels;
  extra.g_min = b1.g_min;
  extra.g_max = b1.g_max;
  extra.conductance = b1.conductance;
  extra.theta = b1.theta;
  cp.blocks.push_back(std::move(extra));
  cp.labels.assign(g.neuron_labels().begin(), g.neuron_labels().end());

  const std::string path = temp_path("pss_graph_ckpt_v2.bin");
  robust::save_stacked_checkpoint(path, cp);
  const robust::StackedCheckpoint back = robust::load_stacked_checkpoint(path);
  EXPECT_EQ(back.arch, cp.arch);
  EXPECT_EQ(back.base.run_id, 77u);
  EXPECT_EQ(back.base.conductance, cp.base.conductance);
  ASSERT_EQ(back.blocks.size(), 1u);
  EXPECT_EQ(back.blocks[0].conductance, cp.blocks[0].conductance);
  EXPECT_EQ(back.labels, cp.labels);

  // The unified model reader serves checkpoint v2 files too.
  const GraphModel model = graph::load_graph_model(path);
  EXPECT_EQ(model.arch, cp.arch);
  ASSERT_EQ(model.blocks.size(), 2u);
  EXPECT_EQ(model.blocks[1].conductance, cp.blocks[0].conductance);
}

TEST(GraphSnapshot, SingleLayerStackedCheckpointWritesExactV1Bytes) {
  WtaNetwork net(base_config(41));
  net.present(test_rates(36, 1), 100.0, true);
  robust::TrainingCheckpoint cp = robust::TrainingCheckpoint::capture(net);
  cp.run_id = 5;
  cp.images_done = 9;

  const std::string v1 = temp_path("pss_graph_ckpt_v1a.bin");
  const std::string stacked = temp_path("pss_graph_ckpt_v1b.bin");
  robust::save_checkpoint(v1, cp);
  robust::StackedCheckpoint wrap;
  wrap.base = cp;
  robust::save_stacked_checkpoint(stacked, wrap);
  EXPECT_EQ(read_file(v1), read_file(stacked));

  const robust::StackedCheckpoint back = robust::load_stacked_checkpoint(v1);
  EXPECT_TRUE(back.single_layer());
  EXPECT_EQ(back.base.conductance, cp.conductance);
  EXPECT_TRUE(back.blocks.empty());
}

// A pre-graph v1 checkpoint blob committed before the multi-layer format
// existed: the stacked reader must parse it and the stacked writer must
// reproduce it byte for byte (no silent format drift).
TEST(GraphSnapshot, CommittedV1FixtureRoundTripsBitwise) {
  const std::string fixture =
      std::string(PSS_TEST_DATA_DIR) + "/checkpoint_v1.bin";
  const robust::StackedCheckpoint cp = robust::load_stacked_checkpoint(fixture);
  EXPECT_TRUE(cp.single_layer());
  EXPECT_EQ(cp.base.run_id, 0xC0FFEE01u);
  EXPECT_EQ(cp.base.seed, 424242u);
  EXPECT_EQ(cp.base.images_done, 123u);
  EXPECT_EQ(cp.base.neuron_count, 10u);
  EXPECT_EQ(cp.base.input_channels, 25u);
  ASSERT_EQ(cp.base.conductance.size(), 250u);
  EXPECT_EQ(cp.base.conductance[0], 0.0);
  EXPECT_EQ(cp.base.conductance[1], 1.0 / 16.0);

  const std::string rewrite = temp_path("pss_graph_fixture_rewrite.bin");
  robust::save_stacked_checkpoint(rewrite, cp);
  EXPECT_EQ(read_file(fixture), read_file(rewrite));

  // The legacy v1 loader and the graph model reader agree on the same file.
  const robust::TrainingCheckpoint legacy = robust::load_checkpoint(fixture);
  EXPECT_EQ(legacy.conductance, cp.base.conductance);
  const GraphModel model = graph::load_graph_model(fixture);
  ASSERT_EQ(model.blocks.size(), 1u);
  EXPECT_EQ(model.blocks[0].conductance, cp.base.conductance);
}

TEST(GraphSnapshot, EmptyArchSaveRejectsExtraBlocks) {
  // Defensive: empty-arch saves must refuse to carry extra blocks.
  robust::StackedCheckpoint cp;
  cp.base.neuron_count = 2;
  cp.base.input_channels = 2;
  cp.base.conductance.assign(4, 0.5);
  cp.base.theta.assign(2, 0.0);
  cp.blocks.emplace_back();
  EXPECT_THROW(
      robust::save_stacked_checkpoint(temp_path("pss_graph_bad.bin"), cp),
      Error);
}

}  // namespace
}  // namespace pss
