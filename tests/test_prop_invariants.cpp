// Generative STDP / neuron / fixed-point invariant suites (ISSUE consumer 1):
// every property runs over prop-generated configurations instead of the
// hand-picked Table I rows the example-based tests cover — conductance
// confinement to [G_min, G_max] at both event types, monotonicity of the
// update in the causal gap, Q-format encode/decode round-trips across
// Q0.2–Q1.15, and WTA exclusivity under random stimulus.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "pss/network/wta_network.hpp"
#include "pss/prop/check.hpp"
#include "pss/prop/generators.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {
namespace {

using prop::CheckResult;
using prop::Source;

prop::CheckOptions options_with(std::uint32_t cases) {
  prop::CheckOptions options;
  options.cases = cases;
  return options;  // read_env stays on: PSS_PROP_SEED/CASE replay works
}

// ---------------------------------------------------------------------------
// Conductance confinement: whatever the generated rule/precision/rounding,
// no event may move G outside [g_min, effective_g_max].

TEST(PropInvariants, PostSpikeEventConfinesConductance) {
  const CheckResult r = prop::check(
      "post_spike_confines_g",
      [](Source& s) {
        const StdpUpdaterConfig config = prop::gen_stdp_config(s);
        const StdpUpdater updater(config);
        const double g_min = config.magnitude.g_min;
        const double g_max = updater.effective_g_max();
        const double g = s.real(g_min, g_max);
        // Gaps across the whole causal range, plus the never-fired case.
        const double gap =
            s.boolean(0.1) ? std::numeric_limits<double>::infinity()
                           : s.real(0.0, 10.0 * config.det_window_ms);
        const double next = updater.update_at_post_spike(g, gap, s.unit(),
                                                         s.unit(), s.unit());
        PSS_PROP_ASSERT(std::isfinite(next) || gap != gap,
                        "update produced a non-finite conductance");
        PSS_PROP_ASSERT(next >= g_min, "conductance fell below G_min");
        PSS_PROP_ASSERT(next <= g_max, "conductance exceeded G_max");
      },
      options_with(400));
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(PropInvariants, PreSpikeEventConfinesConductance) {
  const CheckResult r = prop::check(
      "pre_spike_confines_g",
      [](Source& s) {
        const StdpUpdaterConfig config = prop::gen_stdp_config(s);
        const StdpUpdater updater(config);
        const double g_min = config.magnitude.g_min;
        const double g_max = updater.effective_g_max();
        const double g = s.real(g_min, g_max);
        const double age =
            s.boolean(0.1) ? std::numeric_limits<double>::infinity()
                           : s.real(0.0, 10.0 * config.gate.tau_dep);
        const double next =
            updater.update_at_pre_spike(g, age, s.unit(), s.unit());
        PSS_PROP_ASSERT(next >= g_min, "conductance fell below G_min");
        PSS_PROP_ASSERT(next <= g_max, "conductance exceeded G_max");
        // The anti-causal pathway only ever depresses.
        PSS_PROP_ASSERT(next <= g, "pre-spike event potentiated");
      },
      options_with(400));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// Monotonicity in Δt. With the same uniform draws, a shorter causal gap can
// only help the synapse: the eq. 6 potentiation gate opens at least as often
// (p_pot falls with the gap) and the stale-depression gate fires at most as
// often (p_dep_stale rises with it), while the deterministic window is a
// step in the gap. So update(g, gap1) ≥ update(g, gap2) whenever
// gap1 ≤ gap2 — for every rule, precision and rounding mode.

TEST(PropInvariants, PostSpikeUpdateIsMonotoneInGap) {
  const CheckResult r = prop::check(
      "post_spike_monotone_in_gap",
      [](Source& s) {
        const StdpUpdaterConfig config = prop::gen_stdp_config(s);
        const StdpUpdater updater(config);
        const double g =
            s.real(config.magnitude.g_min, updater.effective_g_max());
        const double gap1 = s.real(0.0, 5.0 * config.det_window_ms);
        const double gap2 = gap1 + s.real(0.0, 5.0 * config.det_window_ms);
        const double u_pot = s.unit();
        const double u_dep = s.unit();
        const double u_round = s.unit();
        const double near =
            updater.update_at_post_spike(g, gap1, u_pot, u_dep, u_round);
        const double far =
            updater.update_at_post_spike(g, gap2, u_pot, u_dep, u_round);
        PSS_PROP_ASSERT(near + 1e-12 >= far,
                        "shorter causal gap produced a smaller update");
      },
      options_with(400));
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(PropInvariants, PreSpikeDepressionIsMonotoneInPostAge) {
  const CheckResult r = prop::check(
      "pre_spike_monotone_in_age",
      [](Source& s) {
        const StdpUpdaterConfig config = prop::gen_stdp_config(s);
        const StdpUpdater updater(config);
        const double g =
            s.real(config.magnitude.g_min, updater.effective_g_max());
        const double age1 = s.real(0.0, 5.0 * config.gate.tau_dep);
        const double age2 = age1 + s.real(0.0, 5.0 * config.gate.tau_dep);
        const double u_gate = s.unit();
        const double u_round = s.unit();
        // Eq. 7 decays with |Δt|: an older post spike depresses at most as
        // often, so the young-age result is ≤ the old-age result.
        const double young =
            updater.update_at_pre_spike(g, age1, u_gate, u_round);
        const double old = updater.update_at_pre_spike(g, age2, u_gate,
                                                       u_round);
        PSS_PROP_ASSERT(old + 1e-12 >= young,
                        "older post spike depressed more strongly");
      },
      options_with(400));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// Fixed-point encode/decode round-trips across generated Qm.n formats.

TEST(PropInvariants, QFormatFloorCodeRoundTrips) {
  const CheckResult r = prop::check(
      "qformat_floor_roundtrip",
      [](Source& s) {
        const QFormat format = prop::gen_qformat(s);
        const double value = s.real(0.0, format.max_value());
        const std::uint32_t code = format.floor_code(value);
        const double decoded = format.from_code(code);
        PSS_PROP_ASSERT(code < format.level_count(), "code out of range");
        PSS_PROP_ASSERT(format.representable(decoded),
                        "decoded value is off the representation grid");
        PSS_PROP_ASSERT(decoded <= value, "floor decode exceeded the input");
        PSS_PROP_ASSERT(value - decoded < format.resolution(),
                        "floor decode lost more than one quantum");
        // Encoding a grid point is exact: the round-trip is idempotent.
        PSS_PROP_ASSERT(format.floor_code(decoded) == code,
                        "re-encoding the decoded value moved the code");
      },
      options_with(500));
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(PropInvariants, QFormatCodesEnumerateTheGrid) {
  const CheckResult r = prop::check(
      "qformat_code_grid",
      [](Source& s) {
        const QFormat format = prop::gen_qformat(s);
        const std::uint32_t code =
            static_cast<std::uint32_t>(s.bits(format.level_count() - 1));
        const double value = format.from_code(code);
        PSS_PROP_ASSERT(value >= 0.0 && value <= format.max_value(),
                        "grid value outside [0, max]");
        // from_code is exactly code · 2^-n.
        PSS_PROP_ASSERT(value == code * format.resolution(),
                        "grid point not an exact multiple of the resolution");
        PSS_PROP_ASSERT(format.floor_code(value) == code,
                        "floor_code(from_code(c)) != c");
      },
      options_with(500));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// WTA exclusivity and conductance bounds at network level, on generated
// configurations and stimuli (few cases — each presents a full stimulus).

TEST(PropInvariants, WtaInhibitionIsExclusiveUnderRandomStimulus) {
  const CheckResult r = prop::check(
      "wta_exclusive_random_stimulus",
      [](Source& s) {
        WtaConfig config = prop::gen_wta_config(s, "cpu");
        WtaNetwork network(config);
        const std::vector<double> rates =
            prop::gen_rates(s, config.input_channels, 500.0);
        const PresentationResult result =
            network.present(rates, 80.0, /*learn=*/true,
                            /*record_spikes=*/true);
        // Walk the recorded spikes: after neuron w fires at time t, no OTHER
        // neuron may fire inside (t, t + t_inh) — simultaneous spikes in the
        // same step are legal (inhibition lands after the step).
        for (std::size_t i = 0; i < result.spike_events.size(); ++i) {
          const auto [t_i, winner] = result.spike_events[i];
          for (std::size_t j = i + 1; j < result.spike_events.size(); ++j) {
            const auto [t_j, other] = result.spike_events[j];
            if (t_j >= t_i + config.t_inh_ms) break;
            PSS_PROP_ASSERT(other == winner || t_j == t_i,
                            "a non-winner fired inside the inhibition window");
          }
        }
        // Learning ran: every conductance must still live in the legal range.
        const double lo = network.conductance().learn_lo();
        const double hi = network.conductance().learn_hi();
        for (double g : network.conductance().to_vector()) {
          PSS_PROP_ASSERT(g >= lo && g <= hi,
                          "training pushed a conductance out of range");
        }
      },
      options_with(25));
  EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace pss
