// Tests for the AdEx neuron model and the latency (time-to-first-spike)
// encoder — the "beyond the paper" extension modules.
#include <gtest/gtest.h>

#include <vector>

#include "pss/common/error.hpp"
#include "pss/encoding/latency_encoder.hpp"
#include "pss/neuron/adex.hpp"

namespace pss {
namespace {

TEST(Adex, SilentAtRestWithoutInput) {
  EXPECT_DOUBLE_EQ(adex_spiking_frequency(adex_regular_spiking(), 0.0, 1000.0),
                   0.0);
}

TEST(Adex, FiresUnderSufficientCurrent) {
  const double f =
      adex_spiking_frequency(adex_regular_spiking(), 700.0, 2000.0);
  EXPECT_GT(f, 5.0);
  EXPECT_LT(f, 400.0);
}

TEST(Adex, FrequencyMonotoneInCurrent) {
  double prev = 0.0;
  for (double i : {400.0, 600.0, 800.0, 1000.0}) {
    const double f = adex_spiking_frequency(adex_regular_spiking(), i, 1500.0);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(Adex, AdaptingVariantFiresSlowerAtSteadyState) {
  const double rs = adex_spiking_frequency(adex_regular_spiking(), 800.0);
  const double adapting = adex_spiking_frequency(adex_adapting(), 800.0);
  EXPECT_LT(adapting, rs)
      << "larger spike-triggered adaptation must reduce the steady rate";
}

TEST(Adex, AdaptationVariableJumpsOnSpike) {
  const AdexParameters p = adex_regular_spiking();
  double v = p.v_init;
  double w = 0.0;
  bool spiked = false;
  double w_before = 0.0;
  for (int t = 0; t < 500 && !spiked; ++t) {
    w_before = w;
    spiked = adex_step(p, v, w, 900.0, 1.0);
  }
  ASSERT_TRUE(spiked);
  EXPECT_NEAR(w, w_before + p.b, 1e-9 + std::abs(w_before) * 1e-6 + p.b * 0.1);
  EXPECT_DOUBLE_EQ(v, p.v_reset);
}

TEST(AdexPopulation, StepResetAndInhibition) {
  AdexPopulation pop(3, adex_regular_spiking());
  pop.inhibit(0, 1e6);
  std::vector<double> current(3, 900.0);
  std::vector<NeuronIndex> spikes;
  std::vector<int> counts(3, 0);
  for (int t = 1; t <= 500; ++t) {
    pop.step(current, t, 1.0, spikes);
    for (NeuronIndex j : spikes) counts[j]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
  pop.reset();
  EXPECT_EQ(pop.spike_count(), 0u);
  for (double v : pop.membrane()) {
    EXPECT_DOUBLE_EQ(v, adex_regular_spiking().v_init);
  }
}

TEST(AdexPopulation, ThresholdOffsetSuppresses) {
  AdexPopulation pop(2, adex_regular_spiking());
  const std::vector<double> offsets = {0.0, 1000.0};
  std::vector<double> current(2, 900.0);
  std::vector<NeuronIndex> spikes;
  std::vector<int> counts(2, 0);
  for (int t = 1; t <= 400; ++t) {
    pop.step(current, t, 1.0, spikes, offsets);
    for (NeuronIndex j : spikes) counts[j]++;
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

TEST(LatencyEncoder, BrighterChannelsFireEarlier) {
  LatencyEncoder enc(3, 100.0);
  const std::vector<double> rates = {1.0, 11.0, 22.0};
  enc.set_rates(rates);
  EXPECT_LT(enc.latency_ms(2), enc.latency_ms(1));
  EXPECT_DOUBLE_EQ(enc.latency_ms(2), 0.0) << "max intensity at window start";
  EXPECT_LT(enc.latency_ms(0), 0.0) << "floor channel silent by default";
}

TEST(LatencyEncoder, OneSpikePerWindowPerActiveChannel) {
  LatencyEncoder enc(4, 50.0);
  const std::vector<double> rates = {1.0, 5.0, 10.0, 22.0};
  enc.set_rates(rates);
  std::vector<int> counts(4, 0);
  std::vector<ChannelIndex> active;
  for (StepIndex s = 0; s < 200; ++s) {  // 4 windows of 50 ms
    enc.active_channels(s, 1.0, active);
    for (ChannelIndex c : active) counts[c]++;
  }
  EXPECT_EQ(counts[0], 0);  // silent floor
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 4);
  EXPECT_EQ(counts[3], 4);
}

TEST(LatencyEncoder, UniformInputAllAtWindowStart) {
  LatencyEncoder enc(3, 40.0);
  const std::vector<double> rates = {7.0, 7.0, 7.0};
  enc.set_rates(rates);
  for (ChannelIndex c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(enc.latency_ms(c), 0.0);
  }
}

TEST(LatencyEncoder, SilentFloorCanBeDisabled) {
  LatencyEncoder enc(2, 100.0, 0.9, /*silent_floor=*/false);
  const std::vector<double> rates = {1.0, 22.0};
  enc.set_rates(rates);
  EXPECT_GE(enc.latency_ms(0), 0.0);
  EXPECT_NEAR(enc.latency_ms(0), 90.0, 1e-9);
}

TEST(LatencyEncoder, RejectsBadConfig) {
  EXPECT_THROW(LatencyEncoder(0, 100.0), Error);
  EXPECT_THROW(LatencyEncoder(2, -5.0), Error);
  EXPECT_THROW(LatencyEncoder(2, 100.0, 1.5), Error);
  LatencyEncoder enc(2, 100.0);
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(enc.set_rates(wrong), Error);
}

}  // namespace
}  // namespace pss
