#!/usr/bin/env python3
"""Pins tools/bench_compare.py behaviour: the perf-regression gate.

Covers, with synthetic baseline/record pairs written into --work: an
in-band record passes (exit 0), an improvement passes (one-sided band), a
regression past the tolerance fails (exit 1), a metric missing from the
record fails (exit 1), malformed inputs exit 2, and --update ratchets the
baseline values in place. Also runs the real committed gate pair
(--baseline/--record) and requires it to pass — the committed record and
its baseline must never drift apart. Runs as ctest `bench_compare_fixtures`
(label `perf`).
"""

import argparse
import json
import os
import subprocess
import sys

FAILURES = []


def check(cond, message):
    if not cond:
        FAILURES.append(message)
        print("FAIL: " + message, file=sys.stderr)


def run_compare(compare, args):
    return subprocess.run([sys.executable, compare] + args,
                          capture_output=True, text=True, timeout=60)


def write_json(path, doc):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def make_baseline(path, metrics):
    write_json(path, {"schema": "pss.bench-baseline.v1", "bench": "fixture",
                      "metrics": metrics})


def make_record(path, gauges, counters=None):
    write_json(path, {"schema": "pss.metrics.v1", "label": "fixture",
                      "metrics": {"counters": counters or {},
                                  "gauges": gauges, "histograms": {}}})


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--compare", required=True,
                    help="path to bench_compare.py")
    ap.add_argument("--baseline", required=True,
                    help="committed bench/baselines/backend.json")
    ap.add_argument("--record", required=True,
                    help="committed BENCH_backend.json")
    ap.add_argument("--work", required=True, help="scratch directory")
    args = ap.parse_args()

    os.makedirs(args.work, exist_ok=True)
    base = os.path.join(args.work, "baseline.json")
    rec = os.path.join(args.work, "record.json")

    spec = {
        "bench.fix.speedup":
            {"value": 2.0, "tolerance": 0.2, "direction": "higher"},
        "bench.fix.seconds":
            {"value": 10.0, "tolerance": 0.1, "direction": "lower"},
    }

    # --- in-band record: exit 0 -------------------------------------------
    make_baseline(base, spec)
    make_record(rec, {"bench.fix.speedup": 1.9, "bench.fix.seconds": 10.5})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 0,
          "in-band record should exit 0, got %d: %s%s"
          % (proc.returncode, proc.stdout, proc.stderr))

    # --- improvement: one-sided band, always passes -----------------------
    make_record(rec, {"bench.fix.speedup": 9.0, "bench.fix.seconds": 0.5})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 0,
          "improvement should exit 0, got %d: %s"
          % (proc.returncode, proc.stdout))

    # --- regression past the band: exit 1 ---------------------------------
    make_record(rec, {"bench.fix.speedup": 1.5, "bench.fix.seconds": 10.5})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 1,
          "speedup regression should exit 1, got %d" % proc.returncode)
    check("bench.fix.speedup" in proc.stdout and "REGRESS" in proc.stdout,
          "regression output should name the failing metric: %s"
          % proc.stdout)

    make_record(rec, {"bench.fix.speedup": 2.0, "bench.fix.seconds": 11.5})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 1,
          "direction=lower regression should exit 1, got %d"
          % proc.returncode)

    # --- boundary value: exactly on the limit passes ----------------------
    make_record(rec, {"bench.fix.speedup": 1.6, "bench.fix.seconds": 11.0})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 0,
          "on-the-limit record should exit 0, got %d: %s"
          % (proc.returncode, proc.stdout))

    # --- missing metric: exit 1 -------------------------------------------
    make_record(rec, {"bench.fix.speedup": 2.0})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 1,
          "missing metric should exit 1, got %d" % proc.returncode)
    check("missing" in proc.stdout,
          "missing-metric output should say so: %s" % proc.stdout)

    # --- counters are consulted too ---------------------------------------
    make_baseline(base, {"events.total": {"value": 100, "tolerance": 0.5,
                                          "direction": "higher"}})
    make_record(rec, {}, counters={"events.total": 80})
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 0,
          "counter metric in band should exit 0, got %d: %s"
          % (proc.returncode, proc.stdout))

    # --- malformed inputs: exit 2 -----------------------------------------
    make_baseline(base, spec)
    proc = run_compare(args.compare,
                       [base, os.path.join(args.work, "missing.json")])
    check(proc.returncode == 2, "unreadable record should exit 2, got %d"
          % proc.returncode)

    write_json(rec, {"schema": "pss.metrics.v1"})  # no metrics object
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 2, "record without metrics should exit 2, got %d"
          % proc.returncode)

    bad_base = os.path.join(args.work, "bad_baseline.json")
    write_json(bad_base, {"schema": "pss.bench-baseline.v1", "metrics": {
        "m": {"value": 1.0, "tolerance": 0.1, "direction": "sideways"}}})
    make_record(rec, {"m": 1.0})
    proc = run_compare(args.compare, [bad_base, rec])
    check(proc.returncode == 2, "bad direction should exit 2, got %d"
          % proc.returncode)

    # --- --update ratchets values, keeps bands ----------------------------
    make_baseline(base, spec)
    make_record(rec, {"bench.fix.speedup": 3.0, "bench.fix.seconds": 8.0})
    proc = run_compare(args.compare, [base, rec, "--update"])
    check(proc.returncode == 0, "--update should exit 0, got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(base) as f:
        updated = json.load(f)
    check(updated["metrics"]["bench.fix.speedup"]["value"] == 3.0,
          "--update should take the new value")
    check(updated["metrics"]["bench.fix.speedup"]["tolerance"] == 0.2,
          "--update must keep the tolerance band")
    proc = run_compare(args.compare, [base, rec])
    check(proc.returncode == 0, "post-update compare should pass")

    # --update with a missing metric must not touch the baseline.
    make_record(rec, {"bench.fix.speedup": 4.0})
    proc = run_compare(args.compare, [base, rec, "--update"])
    check(proc.returncode == 2,
          "--update with missing metric should exit 2, got %d"
          % proc.returncode)
    with open(base) as f:
        check(json.load(f)["metrics"]["bench.fix.speedup"]["value"] == 3.0,
              "failed --update must leave the baseline untouched")

    # --- the committed gate pair must pass --------------------------------
    proc = run_compare(args.compare, [args.baseline, args.record, "--quiet"])
    check(proc.returncode == 0,
          "committed baseline vs committed record should pass, got %d: %s%s"
          % (proc.returncode, proc.stdout, proc.stderr))

    if FAILURES:
        print("%d check(s) failed" % len(FAILURES), file=sys.stderr)
        return 1
    print("test_bench_compare: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
