// Tests for pixel->frequency conversion (Fig. 1d), the spike-train encoders,
// and the frequency-control module (Sec. IV-C).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "pss/common/error.hpp"
#include "pss/encoding/frequency_control.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/encoding/regular_encoder.hpp"

namespace pss {
namespace {

TEST(PixelFrequencyMap, EndpointsMatchFig1d) {
  const PixelFrequencyMap map(1.0, 22.0);
  EXPECT_DOUBLE_EQ(map.frequency(0), 1.0);
  EXPECT_DOUBLE_EQ(map.frequency(255), 22.0);
}

TEST(PixelFrequencyMap, LinearInIntensity) {
  const PixelFrequencyMap map(0.0, 255.0);
  for (int i = 0; i <= 255; ++i) {
    EXPECT_NEAR(map.frequency(static_cast<std::uint8_t>(i)),
                static_cast<double>(i), 1e-9);
  }
}

TEST(PixelFrequencyMap, VectorizedConversionMatchesScalar) {
  const PixelFrequencyMap map(5.0, 78.0);
  const std::vector<std::uint8_t> pixels = {0, 50, 128, 255};
  std::vector<double> rates;
  map.frequencies(pixels, rates);
  ASSERT_EQ(rates.size(), 4u);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    EXPECT_DOUBLE_EQ(rates[i], map.frequency(pixels[i]));
  }
}

TEST(PixelFrequencyMap, RejectsInvalidRange) {
  EXPECT_THROW(PixelFrequencyMap(-1.0, 10.0), Error);
  EXPECT_THROW(PixelFrequencyMap(10.0, 5.0), Error);
}

TEST(PoissonEncoder, EmpiricalRateMatchesRequested) {
  PoissonEncoder enc(1, 42);
  enc.set_uniform_rate(40.0);
  int spikes = 0;
  const int steps = 20000;  // 20 s at 1 ms
  for (int s = 0; s < steps; ++s) {
    if (enc.spikes_at(0, static_cast<StepIndex>(s), 1.0)) ++spikes;
  }
  EXPECT_NEAR(spikes / 20.0, 40.0, 3.0);
}

TEST(PoissonEncoder, ZeroRateNeverSpikes) {
  PoissonEncoder enc(4, 42);
  enc.set_uniform_rate(0.0);
  std::vector<ChannelIndex> active;
  for (int s = 0; s < 1000; ++s) {
    enc.active_channels(static_cast<StepIndex>(s), 1.0, active);
    EXPECT_TRUE(active.empty());
  }
}

TEST(PoissonEncoder, DeterministicAcrossInstances) {
  PoissonEncoder a(16, 7);
  PoissonEncoder b(16, 7);
  a.set_uniform_rate(30.0);
  b.set_uniform_rate(30.0);
  std::vector<ChannelIndex> active_a;
  std::vector<ChannelIndex> active_b;
  for (int s = 0; s < 500; ++s) {
    a.active_channels(static_cast<StepIndex>(s), 1.0, active_a);
    b.active_channels(static_cast<StepIndex>(s), 1.0, active_b);
    EXPECT_EQ(active_a, active_b);
  }
}

TEST(PoissonEncoder, ChannelsAreIndependentStreams) {
  PoissonEncoder enc(2, 7);
  enc.set_uniform_rate(200.0);
  int same = 0;
  const int steps = 2000;
  for (int s = 0; s < steps; ++s) {
    if (enc.spikes_at(0, static_cast<StepIndex>(s), 1.0) ==
        enc.spikes_at(1, static_cast<StepIndex>(s), 1.0)) {
      ++same;
    }
  }
  // p(spike) = 0.2; independent channels agree with p = 0.68.
  EXPECT_NEAR(same / static_cast<double>(steps), 0.68, 0.06);
}

TEST(PoissonEncoder, RandomAccessStepsAreConsistent) {
  PoissonEncoder enc(1, 3);
  enc.set_uniform_rate(100.0);
  const bool at_50 = enc.spikes_at(0, 50, 1.0);
  enc.spikes_at(0, 10, 1.0);
  enc.spikes_at(0, 999, 1.0);
  EXPECT_EQ(enc.spikes_at(0, 50, 1.0), at_50);
}

TEST(PoissonEncoder, PerChannelRates) {
  PoissonEncoder enc(2, 11);
  const std::vector<double> rates = {5.0, 80.0};
  enc.set_rates(rates);
  int c0 = 0;
  int c1 = 0;
  for (int s = 0; s < 10000; ++s) {
    if (enc.spikes_at(0, static_cast<StepIndex>(s), 1.0)) ++c0;
    if (enc.spikes_at(1, static_cast<StepIndex>(s), 1.0)) ++c1;
  }
  EXPECT_NEAR(c0 / 10.0, 5.0, 1.5);
  EXPECT_NEAR(c1 / 10.0, 80.0, 5.0);
}

TEST(PoissonEncoder, RejectsBadInput) {
  PoissonEncoder enc(2, 1);
  const std::vector<double> wrong_size = {1.0};
  EXPECT_THROW(enc.set_rates(wrong_size), Error);
  const std::vector<double> negative = {1.0, -2.0};
  EXPECT_THROW(enc.set_rates(negative), Error);
}

TEST(RegularEncoder, ExactSpikeCount) {
  RegularEncoder enc(1, 0, /*randomize_phase=*/false);
  enc.set_uniform_rate(10.0);  // every 100 ms
  int spikes = 0;
  for (int s = 0; s < 1000; ++s) {
    if (enc.spikes_at(0, static_cast<StepIndex>(s), 1.0)) ++spikes;
  }
  EXPECT_EQ(spikes, 10);
}

TEST(RegularEncoder, PeriodIsRegular) {
  RegularEncoder enc(1, 0, false);
  enc.set_uniform_rate(20.0);  // 50 ms period
  std::vector<int> times;
  for (int s = 0; s < 500; ++s) {
    if (enc.spikes_at(0, static_cast<StepIndex>(s), 1.0)) times.push_back(s);
  }
  ASSERT_GE(times.size(), 3u);
  for (std::size_t i = 2; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], times[i - 1] - times[i - 2]);
  }
}

TEST(RegularEncoder, PhasesDecorrelateChannels) {
  RegularEncoder enc(8, 99, true);
  enc.set_uniform_rate(10.0);
  std::vector<ChannelIndex> active;
  std::size_t max_simultaneous = 0;
  for (int s = 0; s < 300; ++s) {
    enc.active_channels(static_cast<StepIndex>(s), 1.0, active);
    max_simultaneous = std::max(max_simultaneous, active.size());
  }
  EXPECT_LT(max_simultaneous, 8u) << "random phases must break lockstep";
}

TEST(FrequencyControl, BaselinePlanIsIdentity) {
  const FrequencyControl ctl(1.0, 22.0, 500.0);
  const FrequencyPlan p = ctl.baseline();
  EXPECT_DOUBLE_EQ(p.f_min_hz, 1.0);
  EXPECT_DOUBLE_EQ(p.f_max_hz, 22.0);
  EXPECT_DOUBLE_EQ(p.t_learn_ms, 500.0);
}

TEST(FrequencyControl, BoostScalesFrequencyAndTime) {
  // Sec. IV-C's two phases: frequency boost + learning-time reduction.
  const FrequencyControl ctl(1.0, 22.0, 500.0);
  const FrequencyPlan p = ctl.plan(5.0);
  EXPECT_DOUBLE_EQ(p.f_max_hz, 110.0);
  EXPECT_DOUBLE_EQ(p.f_min_hz, 5.0);
  EXPECT_DOUBLE_EQ(p.t_learn_ms, 100.0);
}

TEST(FrequencyControl, LearningTimeClampedAtFloor) {
  const FrequencyControl ctl(1.0, 22.0, 500.0);
  const FrequencyPlan p = ctl.plan(100.0, /*min_t_learn_ms=*/20.0);
  EXPECT_DOUBLE_EQ(p.t_learn_ms, 20.0);
}

TEST(FrequencyControl, PlanForTargetFMax) {
  const FrequencyControl ctl(1.0, 22.0, 500.0);
  const FrequencyPlan p = ctl.plan_for_f_max(78.0);
  EXPECT_DOUBLE_EQ(p.f_max_hz, 78.0);
  EXPECT_NEAR(p.boost, 78.0 / 22.0, 1e-12);
  EXPECT_NEAR(p.t_learn_ms, 500.0 * 22.0 / 78.0, 1e-9);
}

TEST(FrequencyControl, RejectsDeBoost) {
  const FrequencyControl ctl(1.0, 22.0, 500.0);
  EXPECT_THROW(ctl.plan(0.5), Error);
  EXPECT_THROW(ctl.plan_for_f_max(10.0), Error);
}

}  // namespace
}  // namespace pss
