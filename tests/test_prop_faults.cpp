// Fault-schedule explorer (ISSUE consumer 3): property-based exploration of
// the deterministic fault-injection registry. Generated `faults=` plans are
// armed through the same spec parser operators use, and the suite asserts
// the three contracts the robustness layer sells: (a) fire decisions are a
// pure function of (spec, seed, hit sequence); (b) a fatal train.interrupt
// at any generated (checkpoint_every, kill ordinal) resumes bitwise onto the
// uninterrupted trajectory; (c) transient shard.worker and io.snapshot.write
// schedules — whatever items they land on — never change the trained state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/prop/check.hpp"
#include "pss/prop/generators.hpp"
#include "pss/robust/checkpoint.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss {
namespace {

using prop::CheckResult;
using prop::Source;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

prop::CheckOptions options_with(std::uint32_t cases) {
  prop::CheckOptions options;
  options.cases = cases;
  return options;
}

/// Clears the process-wide injector on both sides of a property case, so a
/// Failure unwinding out of the middle of a case can't leave a schedule
/// armed for the next case (or the next test).
struct ScopedFaultClear {
  ScopedFaultClear() { robust::faults().clear(); }
  ~ScopedFaultClear() { robust::faults().clear(); }
};

class PropFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kError);
    robust::faults().clear();
  }
  void TearDown() override { robust::faults().clear(); }
};

WtaConfig tiny_config(std::uint64_t seed, const std::string& backend) {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                         StdpKind::kStochastic, 12);
  cfg.seed = seed;
  cfg.backend = backend;
  return cfg;
}

TrainerConfig fast_trainer() {
  TrainerConfig tc;
  tc.t_learn_ms = 150.0;
  return tc;
}

Dataset training_images() {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 8, .test_count = 1, .seed = 4});
  return data.train.head(8);
}

void assert_same_trained_state(const WtaNetwork& a, const WtaNetwork& b,
                               const std::string& what) {
  PSS_PROP_ASSERT(a.conductance().to_vector() == b.conductance().to_vector(),
                  what + ": conductance diverged");
  PSS_PROP_ASSERT(std::vector<double>(a.theta().begin(), a.theta().end()) ==
                      std::vector<double>(b.theta().begin(), b.theta().end()),
                  what + ": theta diverged");
  PSS_PROP_ASSERT(a.presentation_index() == b.presentation_index(),
                  what + ": presentation index diverged");
  PSS_PROP_ASSERT(a.now() == b.now(), what + ": simulation clock diverged");
}

// ---------------------------------------------------------------------------
// (a) Fire decisions are deterministic per (spec, seed, hit sequence).

TEST_F(PropFaults, GeneratedSchedulesFireDeterministically) {
  const CheckResult r = prop::check(
      "fault_schedule_determinism",
      [](Source& s) {
        const std::string spec = prop::gen_fault_spec(s);
        const std::uint64_t seed = s.bits(0xffffffffull);
        const std::uint64_t probes = 10 + s.bits(50);

        auto fire_log = [&](robust::FaultInjector& injector) {
          injector.arm_from_spec(spec);
          injector.set_seed(seed);
          std::vector<std::uint8_t> log;
          for (const std::string& point : injector.armed_points()) {
            for (std::uint64_t i = 0; i < probes; ++i) {
              log.push_back(injector.should_fire(point) ? 1 : 0);
            }
            log.push_back(
                static_cast<std::uint8_t>(injector.fired(point) & 0xff));
          }
          return log;
        };

        robust::FaultInjector probe;
        probe.arm_from_spec(spec);
        PSS_PROP_ASSERT(!probe.armed_points().empty(),
                        "generated spec '" + spec + "' armed nothing");

        robust::FaultInjector first;
        robust::FaultInjector second;
        PSS_PROP_ASSERT(fire_log(first) == fire_log(second),
                        "spec '" + spec + "' seed " + std::to_string(seed) +
                            ": fire sequence is not reproducible");
      },
      options_with(40));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// (b) Kill -> resume is bitwise for generated (checkpoint_every, kill
// ordinal, backend) schedules, armed through the spec grammar.

TEST_F(PropFaults, KillAndResumeIsBitwiseUnderGeneratedSchedules) {
  const Dataset train = training_images();
  const CheckResult r = prop::check(
      "fault_kill_resume_bitwise",
      [&](Source& s) {
        ScopedFaultClear guard;
        const std::string backend = s.choose({"cpu", "cpu_sparse"});
        const std::uint64_t net_seed = 1 + s.bits(50);
        const std::uint64_t every = 1 + s.bits(2);       // checkpoint cadence
        // Kill strictly after the first checkpoint boundary so a resume
        // point is guaranteed on disk.
        const std::uint64_t kill_after = every + 1 + s.bits(1);
        const std::string spec = "train.interrupt:rate=1,after=" +
                                 std::to_string(kill_after) +
                                 ",count=1,kind=fatal";

        // Reference: one uninterrupted run.
        WtaNetwork ref(tiny_config(net_seed, backend));
        UnsupervisedTrainer tref(ref, fast_trainer());
        tref.train(train);

        const std::string path =
            temp_path("pss_prop_resume_" + std::to_string(net_seed) + "_" +
                      std::to_string(kill_after) + ".ckpt");
        TrainerConfig tc = fast_trainer();
        tc.checkpoint_every = every;
        tc.checkpoint_path = path;

        WtaNetwork a(tiny_config(net_seed, backend));
        UnsupervisedTrainer ta(a, tc);
        robust::faults().arm_from_spec(spec);
        bool killed = false;
        try {
          ta.train(train);
        } catch (const Error&) {
          killed = true;
        }
        robust::faults().clear();
        PSS_PROP_ASSERT(killed, "schedule '" + spec + "' never interrupted");

        WtaNetwork b(tiny_config(net_seed, backend));
        UnsupervisedTrainer tb(b, tc);
        const robust::TrainingCheckpoint cp = robust::load_checkpoint(path);
        PSS_PROP_ASSERT(cp.images_done >= every,
                        "no checkpoint boundary before the kill");
        tb.resume_from(cp);
        tb.train(train);
        std::remove(path.c_str());

        assert_same_trained_state(ref, b,
                                  backend + " resume after '" + spec + "'");
      },
      options_with(4));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// (c1) Transient shard.worker schedules requeue deterministically: whatever
// items the fault lands on (the ordinal->item mapping is racy by design),
// the retried batched run converges bitwise onto the fault-free result.

TEST_F(PropFaults, TransientWorkerFaultsRequeueDeterministically) {
  const Dataset train = training_images();
  const CheckResult r = prop::check(
      "fault_requeue_determinism",
      [&](Source& s) {
        ScopedFaultClear guard;
        const std::uint64_t net_seed = 1 + s.bits(50);
        const std::uint64_t workers = 1 + s.bits(2);
        const std::uint64_t after = s.bits(6);
        const std::uint64_t count = 1 + s.bits(1);  // within the retry budget
        const std::string spec = "shard.worker:rate=1,after=" +
                                 std::to_string(after) +
                                 ",count=" + std::to_string(count);

        TrainerConfig tc = fast_trainer();
        tc.batch_size = 2;

        WtaNetwork ref(tiny_config(net_seed, "cpu"));
        UnsupervisedTrainer tref(ref, tc);
        BatchRunner ref_runner(1);
        tref.train(train, ref_runner);

        WtaNetwork faulted(tiny_config(net_seed, "cpu"));
        UnsupervisedTrainer tf(faulted, tc);
        BatchRunner runner(static_cast<std::size_t>(workers));
        robust::faults().arm_from_spec(spec);
        tf.train(train, runner);  // transient fires must be absorbed
        const std::uint64_t fired = robust::faults().fired("shard.worker");
        robust::faults().clear();
        PSS_PROP_ASSERT(fired >= 1,
                        "schedule '" + spec + "' never fired (hits exceed " +
                            std::to_string(after) + ")");

        assert_same_trained_state(
            ref, faulted,
            "requeue under '" + spec + "' x" + std::to_string(workers));
      },
      options_with(4));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// (c2) Failed checkpoint writes are isolated: an io.snapshot.write schedule
// degrades durability (counted, retried), never the training trajectory.

TEST_F(PropFaults, SnapshotWriteFaultsLeaveTrainingStateIntact) {
  const Dataset train = training_images();
  const CheckResult r = prop::check(
      "fault_snapshot_write_isolated",
      [&](Source& s) {
        ScopedFaultClear guard;
        const std::uint64_t net_seed = 1 + s.bits(50);
        const std::uint64_t after = s.bits(2);
        const std::uint64_t count = 1 + s.bits(1);
        const std::string spec = "io.snapshot.write:rate=1,after=" +
                                 std::to_string(after) +
                                 ",count=" + std::to_string(count);

        WtaNetwork ref(tiny_config(net_seed, "cpu"));
        UnsupervisedTrainer tref(ref, fast_trainer());
        tref.train(train);

        const std::string path = temp_path("pss_prop_snapfault_" +
                                           std::to_string(net_seed) + ".ckpt");
        TrainerConfig tc = fast_trainer();
        tc.checkpoint_every = 2;
        tc.checkpoint_path = path;
        WtaNetwork faulted(tiny_config(net_seed, "cpu"));
        UnsupervisedTrainer tf(faulted, tc);
        robust::faults().arm_from_spec(spec);
        tf.train(train);  // write failures are transient; training finishes
        robust::faults().clear();
        std::remove(path.c_str());

        assert_same_trained_state(ref, faulted,
                                  "training under '" + spec + "'");
      },
      options_with(3));
  EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace pss
