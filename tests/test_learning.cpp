// Tests for homeostasis, the trainer, labeler and classifier, plus a small
// end-to-end unsupervised-learning integration check.
#include <gtest/gtest.h>

#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/learning/classifier.hpp"
#include "pss/learning/homeostasis.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"

namespace pss {
namespace {

TEST(AdaptiveThreshold, SpikeRaisesTheta) {
  AdaptiveThreshold theta(3, HomeostasisParams{true, 0.5, 1000.0, 10.0});
  theta.on_spike(1);
  theta.on_spike(1);
  EXPECT_DOUBLE_EQ(theta.theta()[0], 0.0);
  EXPECT_DOUBLE_EQ(theta.theta()[1], 1.0);
}

TEST(AdaptiveThreshold, DecayIsExponential) {
  AdaptiveThreshold theta(1, HomeostasisParams{true, 1.0, 100.0, 10.0});
  theta.on_spike(0);
  theta.decay(100.0);
  EXPECT_NEAR(theta.theta()[0], std::exp(-1.0), 1e-9);
}

TEST(AdaptiveThreshold, CapAtThetaMax) {
  AdaptiveThreshold theta(1, HomeostasisParams{true, 5.0, 1000.0, 7.0});
  for (int i = 0; i < 10; ++i) theta.on_spike(0);
  EXPECT_DOUBLE_EQ(theta.theta()[0], 7.0);
}

TEST(AdaptiveThreshold, DisabledIsInert) {
  AdaptiveThreshold theta(2, HomeostasisParams{false, 1.0, 100.0, 10.0});
  theta.on_spike(0);
  theta.decay(1.0);
  EXPECT_DOUBLE_EQ(theta.theta()[0], 0.0);
}

TEST(AdaptiveThreshold, ResetClears) {
  AdaptiveThreshold theta(1, HomeostasisParams{});
  theta.on_spike(0);
  theta.reset();
  EXPECT_DOUBLE_EQ(theta.theta()[0], 0.0);
}

TEST(AdaptiveThreshold, RejectsBadParams) {
  EXPECT_THROW(AdaptiveThreshold(1, HomeostasisParams{true, -0.1, 100.0, 1.0}),
               Error);
  EXPECT_THROW(AdaptiveThreshold(1, HomeostasisParams{true, 0.1, 0.0, 1.0}),
               Error);
}

TEST(TrainerConfig, FromTable1PicksRowOperatingPoint) {
  const TrainerConfig base = TrainerConfig::from_table1(LearningOption::kFloat32);
  EXPECT_DOUBLE_EQ(base.f_min_hz, 1.0);
  EXPECT_DOUBLE_EQ(base.f_max_hz, 22.0);
  EXPECT_DOUBLE_EQ(base.t_learn_ms, 500.0);
  const TrainerConfig hf =
      TrainerConfig::from_table1(LearningOption::kHighFrequency);
  EXPECT_DOUBLE_EQ(hf.f_max_hz, 78.0);
  EXPECT_DOUBLE_EQ(hf.t_learn_ms, 100.0);
}

class LearningPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kWarn);
    data_ = new LabeledDataset(make_synthetic_digits(
        {.train_count = 120, .test_count = 160, .seed = 21}));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static WtaConfig config() {
    WtaConfig cfg =
        WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 40);
    cfg.seed = 5;
    return cfg;
  }

  static LabeledDataset* data_;
};

LabeledDataset* LearningPipeline::data_ = nullptr;

TEST_F(LearningPipeline, TrainerReportsStats) {
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{1.0, 22.0, 200.0});
  std::size_t callbacks = 0;
  const TrainingStats stats =
      trainer.train(data_->train.head(10), [&](std::size_t) { ++callbacks; });
  EXPECT_EQ(stats.images_presented, 10u);
  EXPECT_EQ(callbacks, 10u);
  EXPECT_DOUBLE_EQ(stats.simulated_ms, 2000.0);
  EXPECT_GT(stats.total_input_spikes, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST_F(LearningPipeline, LabelerAssignsClasses) {
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{1.0, 22.0, 300.0});
  trainer.train(data_->train.head(60));
  const PixelFrequencyMap map(1.0, 22.0);
  const LabelingResult labels =
      label_neurons(net, data_->test.head(60), map, 250.0);
  EXPECT_EQ(labels.neuron_labels.size(), 40u);
  EXPECT_EQ(labels.class_count, 10u);
  EXPECT_GT(labels.labelled_neurons, 20u) << "most neurons should respond";
  for (int label : labels.neuron_labels) {
    EXPECT_GE(label, -1);
    EXPECT_LT(label, 10);
  }
}

TEST_F(LearningPipeline, EndToEndBeatsChanceByWideMargin) {
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{1.0, 22.0, 400.0});
  trainer.train(data_->train);
  const PixelFrequencyMap map(1.0, 22.0);
  const auto [label_set, eval_set] = data_->labelling_split(80);
  const LabelingResult labels = label_neurons(net, label_set, map, 300.0);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           300.0);
  const EvaluationResult result = classifier.evaluate(eval_set.head(80));
  EXPECT_GT(result.accuracy, 0.3) << "chance is 0.1";
  EXPECT_EQ(result.confusion.total(), 80u);
}

TEST_F(LearningPipeline, ClassifierValidatesInputs) {
  WtaNetwork net(config());
  const PixelFrequencyMap map(1.0, 22.0);
  std::vector<int> wrong_size(10, 0);
  EXPECT_THROW(SnnClassifier(net, wrong_size, 10, map, 100.0), Error);
  std::vector<int> bad_label(40, 12);
  EXPECT_THROW(SnnClassifier(net, bad_label, 10, map, 100.0), Error);
  std::vector<int> ok(40, -1);
  EXPECT_THROW(SnnClassifier(net, ok, 0, map, 100.0), Error);
}

TEST_F(LearningPipeline, UntrainedNetworkNearChance) {
  WtaNetwork net(config());
  const PixelFrequencyMap map(1.0, 22.0);
  const auto [label_set, eval_set] = data_->labelling_split(80);
  const LabelingResult labels = label_neurons(net, label_set, map, 200.0);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           200.0);
  const EvaluationResult result = classifier.evaluate(eval_set.head(60));
  EXPECT_LT(result.accuracy, 0.45)
      << "random initial conductances should not classify well";
}

TEST_F(LearningPipeline, AllAbstainWhenNeuronsUnlabelled) {
  WtaNetwork net(config());
  const PixelFrequencyMap map(1.0, 22.0);
  std::vector<int> unlabelled(40, -1);
  SnnClassifier classifier(net, unlabelled, 10, map, 100.0);
  EXPECT_EQ(classifier.predict(data_->test[0]), -1);
}

}  // namespace
}  // namespace pss
