// Tests for homeostasis, the trainer, labeler and classifier, plus a small
// end-to-end unsupervised-learning integration check.
#include <gtest/gtest.h>

#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/engine/launch.hpp"
#include "pss/learning/classifier.hpp"
#include "pss/learning/homeostasis.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"

namespace pss {
namespace {

TEST(AdaptiveThreshold, SpikeRaisesTheta) {
  AdaptiveThreshold theta(3, HomeostasisParams{true, 0.5, 1000.0, 10.0});
  theta.on_spike(1);
  theta.on_spike(1);
  EXPECT_DOUBLE_EQ(theta.theta()[0], 0.0);
  EXPECT_DOUBLE_EQ(theta.theta()[1], 1.0);
}

TEST(AdaptiveThreshold, DecayIsExponential) {
  AdaptiveThreshold theta(1, HomeostasisParams{true, 1.0, 100.0, 10.0});
  theta.on_spike(0);
  theta.decay(100.0);
  EXPECT_NEAR(theta.theta()[0], std::exp(-1.0), 1e-9);
}

TEST(AdaptiveThreshold, CapAtThetaMax) {
  AdaptiveThreshold theta(1, HomeostasisParams{true, 5.0, 1000.0, 7.0});
  for (int i = 0; i < 10; ++i) theta.on_spike(0);
  EXPECT_DOUBLE_EQ(theta.theta()[0], 7.0);
}

TEST(AdaptiveThreshold, DisabledIsInert) {
  AdaptiveThreshold theta(2, HomeostasisParams{false, 1.0, 100.0, 10.0});
  theta.on_spike(0);
  theta.decay(1.0);
  EXPECT_DOUBLE_EQ(theta.theta()[0], 0.0);
}

TEST(AdaptiveThreshold, ResetClears) {
  AdaptiveThreshold theta(1, HomeostasisParams{});
  theta.on_spike(0);
  theta.reset();
  EXPECT_DOUBLE_EQ(theta.theta()[0], 0.0);
}

TEST(AdaptiveThreshold, RejectsBadParams) {
  EXPECT_THROW(AdaptiveThreshold(1, HomeostasisParams{true, -0.1, 100.0, 1.0}),
               Error);
  EXPECT_THROW(AdaptiveThreshold(1, HomeostasisParams{true, 0.1, 0.0, 1.0}),
               Error);
}

TEST(TrainerConfig, FromTable1PicksRowOperatingPoint) {
  const TrainerConfig base = TrainerConfig::from_table1(LearningOption::kFloat32);
  EXPECT_DOUBLE_EQ(base.f_min_hz, 1.0);
  EXPECT_DOUBLE_EQ(base.f_max_hz, 22.0);
  EXPECT_DOUBLE_EQ(base.t_learn_ms, 500.0);
  const TrainerConfig hf =
      TrainerConfig::from_table1(LearningOption::kHighFrequency);
  EXPECT_DOUBLE_EQ(hf.f_max_hz, 78.0);
  EXPECT_DOUBLE_EQ(hf.t_learn_ms, 100.0);
}

class LearningPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kWarn);
    data_ = new LabeledDataset(make_synthetic_digits(
        {.train_count = 120, .test_count = 160, .seed = 21}));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static WtaConfig config() {
    WtaConfig cfg =
        WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 40);
    cfg.seed = 5;
    return cfg;
  }

  static LabeledDataset* data_;
};

LabeledDataset* LearningPipeline::data_ = nullptr;

TEST_F(LearningPipeline, TrainerReportsStats) {
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 200.0});
  std::size_t callbacks = 0;
  const TrainingStats stats =
      trainer.train(data_->train.head(10), [&](std::size_t) { ++callbacks; });
  EXPECT_EQ(stats.images_presented, 10u);
  EXPECT_EQ(callbacks, 10u);
  EXPECT_DOUBLE_EQ(stats.simulated_ms, 2000.0);
  EXPECT_GT(stats.total_input_spikes, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST_F(LearningPipeline, LabelerAssignsClasses) {
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 300.0});
  trainer.train(data_->train.head(60));
  const PixelFrequencyMap map(1.0, 22.0);
  const LabelingResult labels =
      label_neurons(net, data_->test.head(60), map, 250.0);
  EXPECT_EQ(labels.neuron_labels.size(), 40u);
  EXPECT_EQ(labels.class_count, 10u);
  EXPECT_GT(labels.labelled_neurons, 20u) << "most neurons should respond";
  for (int label : labels.neuron_labels) {
    EXPECT_GE(label, -1);
    EXPECT_LT(label, 10);
  }
}

TEST_F(LearningPipeline, EndToEndBeatsChanceByWideMargin) {
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 400.0});
  trainer.train(data_->train);
  const PixelFrequencyMap map(1.0, 22.0);
  const auto [label_set, eval_set] = data_->labelling_split(80);
  const LabelingResult labels = label_neurons(net, label_set, map, 300.0);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           300.0);
  const EvaluationResult result = classifier.evaluate(eval_set.head(80));
  EXPECT_GT(result.accuracy, 0.3) << "chance is 0.1";
  EXPECT_EQ(result.confusion.total(), 80u);
}

TEST_F(LearningPipeline, ClassifierValidatesInputs) {
  WtaNetwork net(config());
  const PixelFrequencyMap map(1.0, 22.0);
  std::vector<int> wrong_size(10, 0);
  EXPECT_THROW(SnnClassifier(net, wrong_size, 10, map, 100.0), Error);
  std::vector<int> bad_label(40, 12);
  EXPECT_THROW(SnnClassifier(net, bad_label, 10, map, 100.0), Error);
  std::vector<int> ok(40, -1);
  EXPECT_THROW(SnnClassifier(net, ok, 0, map, 100.0), Error);
}

TEST_F(LearningPipeline, UntrainedNetworkNearChance) {
  WtaNetwork net(config());
  const PixelFrequencyMap map(1.0, 22.0);
  const auto [label_set, eval_set] = data_->labelling_split(80);
  const LabelingResult labels = label_neurons(net, label_set, map, 200.0);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           200.0);
  const EvaluationResult result = classifier.evaluate(eval_set.head(60));
  EXPECT_LT(result.accuracy, 0.45)
      << "random initial conductances should not classify well";
}

TEST_F(LearningPipeline, BatchedLabellingAndEvalMatchSequential) {
  // Core acceptance criterion: batched labelling/evaluation is bitwise
  // identical to the sequential path at every worker count.
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 250.0});
  trainer.train(data_->train.head(25));

  Engine serial(1);
  WtaNetwork seq = net.replicate(&serial);
  WtaNetwork par1 = net.replicate(&serial);
  WtaNetwork par3 = net.replicate(&serial);

  const PixelFrequencyMap map(1.0, 22.0);
  const auto [label_set_full, eval_set] = data_->labelling_split(60);
  const Dataset label_set = label_set_full.head(30);
  const Dataset eval = eval_set.head(30);

  BatchRunner one(1);
  BatchRunner three(3);
  const LabelingResult a = label_neurons(seq, label_set, map, 200.0);
  const LabelingResult b = label_neurons(par1, label_set, map, 200.0, one);
  const LabelingResult c = label_neurons(par3, label_set, map, 200.0, three);
  EXPECT_EQ(a.neuron_labels, b.neuron_labels);
  EXPECT_EQ(a.neuron_labels, c.neuron_labels);
  EXPECT_EQ(a.response, b.response);
  EXPECT_EQ(a.response, c.response);
  EXPECT_EQ(a.labelled_neurons, c.labelled_neurons);
  // The source network's clock/counter advance exactly as sequentially.
  EXPECT_EQ(seq.presentation_index(), par3.presentation_index());
  EXPECT_DOUBLE_EQ(seq.now(), par3.now());

  SnnClassifier ca(seq, a.neuron_labels, a.class_count, map, 200.0);
  SnnClassifier cb(par1, b.neuron_labels, b.class_count, map, 200.0);
  SnnClassifier cc(par3, c.neuron_labels, c.class_count, map, 200.0);
  const EvaluationResult ra = ca.evaluate(eval);
  const EvaluationResult rb = cb.evaluate(eval, one);
  const EvaluationResult rc = cc.evaluate(eval, three);
  EXPECT_DOUBLE_EQ(ra.accuracy, rb.accuracy);
  EXPECT_DOUBLE_EQ(ra.accuracy, rc.accuracy);
  EXPECT_EQ(ra.confusion.to_string(), rb.confusion.to_string());
  EXPECT_EQ(ra.confusion.to_string(), rc.confusion.to_string());
}

TEST_F(LearningPipeline, MinibatchTrainingIsWorkerCountInvariant) {
  // Minibatch STDP changes the update schedule (batch boundaries), but for a
  // fixed batch size the result must not depend on how many workers computed
  // the per-image deltas.
  TrainerConfig tc{1.0, 22.0, 250.0};
  tc.batch_size = 5;

  WtaNetwork a(config());
  WtaNetwork b(config());
  UnsupervisedTrainer ta(a, tc);
  UnsupervisedTrainer tb(b, tc);
  BatchRunner one(1);
  BatchRunner four(4);
  const Dataset train = data_->train.head(18);  // last batch partial (3)
  const TrainingStats sa = ta.train(train, one);
  const TrainingStats sb = tb.train(train, four);

  EXPECT_EQ(a.conductance().to_vector(), b.conductance().to_vector());
  EXPECT_EQ(std::vector<double>(a.theta().begin(), a.theta().end()),
            std::vector<double>(b.theta().begin(), b.theta().end()));
  EXPECT_EQ(sa.total_post_spikes, sb.total_post_spikes);
  EXPECT_EQ(sa.total_input_spikes, sb.total_input_spikes);
  EXPECT_EQ(a.presentation_index(), b.presentation_index());
  EXPECT_DOUBLE_EQ(a.now(), b.now());
}

TEST_F(LearningPipeline, MinibatchTrainingStillLearns) {
  TrainerConfig tc{1.0, 22.0, 300.0};
  tc.batch_size = 6;
  WtaNetwork net(config());
  UnsupervisedTrainer trainer(net, tc);
  BatchRunner runner(2);
  const auto before = net.conductance().to_vector();
  std::size_t callbacks = 0;
  const TrainingStats stats = trainer.train(
      data_->train.head(24), runner, [&](std::size_t index) {
        EXPECT_EQ(index, callbacks);  // in image order, every image
        ++callbacks;
      });
  EXPECT_EQ(stats.images_presented, 24u);
  EXPECT_EQ(callbacks, 24u);
  EXPECT_DOUBLE_EQ(stats.simulated_ms, 24 * 300.0);
  EXPECT_GT(stats.total_post_spikes, 0u);
  EXPECT_NE(net.conductance().to_vector(), before)
      << "minibatch STDP must still move conductances";
}

TEST_F(LearningPipeline, MinibatchKeepsQuantizedConductanceOnGrid) {
  // Accumulated deltas must respect the low-precision grid: grid values are
  // binary fractions, so delta accumulation is exact.
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::k2Bit, StdpKind::kStochastic, 40);
  cfg.seed = 5;
  TrainerConfig tc{1.0, 22.0, 250.0};
  tc.batch_size = 4;
  WtaNetwork net(cfg);
  UnsupervisedTrainer trainer(net, tc);
  BatchRunner runner(3);
  trainer.train(data_->train.head(12), runner);
  for (double g : net.conductance().to_vector()) {
    ASSERT_TRUE(q0_2().representable(g)) << g;
  }
}

TEST_F(LearningPipeline, AllAbstainWhenNeuronsUnlabelled) {
  WtaNetwork net(config());
  const PixelFrequencyMap map(1.0, 22.0);
  std::vector<int> unlabelled(40, -1);
  SnnClassifier classifier(net, unlabelled, 10, map, 100.0);
  EXPECT_EQ(classifier.predict(data_->test[0]), -1);
}

}  // namespace
}  // namespace pss
