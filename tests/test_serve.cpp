// pss_serve tests: wire protocol round-trips, the shared backoff policy,
// admission-queue batching/shedding/expiry semantics, once-only completion,
// and end-to-end daemon behaviour over a real loopback socket — including
// the tentpole fault-injection scenario (worker killed mid-batch → heartbeat
// recovery → requeue → responses bitwise-identical to a fault-free run),
// saturation backpressure, deadline shedding, hot reload (torn-free and
// deterministic), and checkpoint-served models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pss/common/backoff.hpp"
#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/engine/launch.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/obs/exporter.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/robust/checkpoint.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/serve/batcher.hpp"
#include "pss/serve/client.hpp"
#include "pss/serve/model.hpp"
#include "pss/serve/net.hpp"
#include "pss/serve/protocol.hpp"
#include "pss/serve/server.hpp"

namespace pss {
namespace {

constexpr std::size_t kNeurons = 16;
constexpr std::size_t kChannels = 64;
constexpr std::size_t kClasses = 4;
constexpr double kTPresentMs = 60.0;
constexpr double kFMin = 1.0;
constexpr double kFMax = 22.0;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

WtaConfig small_config(std::uint64_t seed = 7) {
  WtaConfig cfg;
  cfg.neuron_count = kNeurons;
  cfg.input_channels = kChannels;
  cfg.seed = seed;
  return cfg;
}

std::vector<int> test_labels() {
  std::vector<int> labels(kNeurons);
  for (std::size_t i = 0; i < kNeurons; ++i) {
    labels[i] = static_cast<int>(i % kClasses);
  }
  return labels;
}

/// Writes an untrained-but-labelled model snapshot (classification accuracy
/// is irrelevant here — determinism is what the tests pin).
std::string write_model(const std::string& name, std::uint64_t seed) {
  WtaConfig cfg = small_config(seed);
  WtaNetwork net(cfg);
  const std::vector<int> labels = test_labels();
  const std::string path = temp_path(name);
  save_snapshot(path, NetworkSnapshot::capture(net, &labels));
  return path;
}

/// Deterministic synthetic image `k`.
std::vector<std::uint8_t> test_image(std::size_t k) {
  std::vector<std::uint8_t> pixels(kChannels);
  for (std::size_t j = 0; j < kChannels; ++j) {
    pixels[j] = static_cast<std::uint8_t>((k * 31 + j * 7) % 256);
  }
  return pixels;
}

/// Ground truth: replays admission sequence `seq` exactly the way a serve
/// worker does (same model, same index, same rates) — present() is a pure
/// function of that tuple, so the daemon must return exactly this.
int expected_prediction(const std::string& model_path,
                        std::span<const std::uint8_t> pixels,
                        std::uint64_t seq) {
  const serve::ModelBundle bundle =
      serve::load_model(model_path, small_config());
  Engine engine(1);
  graph::NetworkGraph net = serve::instantiate(bundle, &engine);
  PixelFrequencyMap map(kFMin, kFMax);
  std::vector<double> rates;
  map.frequencies(pixels, rates);
  net.set_presentation_index(seq);
  const graph::GraphResult r = net.present(rates, kTPresentMs, -1);
  return serve::predict_from_counts(r.spike_counts, bundle.neuron_labels,
                                    bundle.class_count);
}

serve::ServeOptions base_options(const std::string& model_path) {
  serve::ServeOptions opts;
  opts.model_path = model_path;
  opts.base_config = small_config();
  opts.f_min_hz = kFMin;
  opts.f_max_hz = kFMax;
  opts.t_present_ms = kTPresentMs;
  opts.workers = 2;
  opts.window_ms = 2;
  opts.heartbeat_interval_ms = 5;
  opts.heartbeat_timeout_ms = 200;
  opts.backoff.base_ms = 1.0;
  opts.backoff.cap_ms = 8.0;
  return opts;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    robust::faults().clear();
    obs::metrics().reset();
    set_log_level(LogLevel::kError);
  }
  void TearDown() override { robust::faults().clear(); }
};

// ---------------------------------------------------------------- protocol

TEST_F(ServeTest, RequestRoundTrips) {
  serve::Request request;
  request.verb = serve::Verb::kClassify;
  request.id = 0x1122334455667788ull;
  request.deadline_ms = 1500;
  request.body = test_image(3);
  const auto bytes = serve::encode_request(request);
  const serve::Request back = serve::decode_request(bytes);
  EXPECT_EQ(back.verb, request.verb);
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.deadline_ms, request.deadline_ms);
  EXPECT_EQ(back.body, request.body);
}

TEST_F(ServeTest, ResponseRoundTrips) {
  serve::Response response{serve::Status::kOverloaded, 42, -1, "try later"};
  const auto bytes = serve::encode_response(response);
  const serve::Response back = serve::decode_response(bytes);
  EXPECT_EQ(back.status, response.status);
  EXPECT_EQ(back.id, response.id);
  EXPECT_EQ(back.value, response.value);
  EXPECT_EQ(back.message, response.message);
}

TEST_F(ServeTest, MalformedPayloadsThrow) {
  serve::Request request;
  request.verb = serve::Verb::kPing;
  auto bytes = serve::encode_request(request);
  // Truncated.
  auto truncated = bytes;
  truncated.pop_back();
  truncated.pop_back();
  EXPECT_THROW(serve::decode_request(truncated), Error);
  // Unknown verb.
  auto bad_verb = bytes;
  bad_verb[0] = 0x7f;
  EXPECT_THROW(serve::decode_request(bad_verb), Error);
  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(serve::decode_request(trailing), Error);
  // Body length pointing past the payload.
  serve::Request with_body;
  with_body.verb = serve::Verb::kClassify;
  with_body.body = {1, 2, 3, 4};
  auto lying = serve::encode_request(with_body);
  lying[13] = 0xff;  // body_size low byte (1 + 8 + 4 offset)
  EXPECT_THROW(serve::decode_request(lying), Error);
  EXPECT_THROW(serve::decode_response({bytes.data(), 2}), Error);
  EXPECT_STREQ(serve::verb_name(serve::Verb::kClassify), "classify");
  EXPECT_STREQ(serve::status_name(serve::Status::kOverloaded), "overloaded");
}

// ----------------------------------------------------------------- backoff

TEST_F(ServeTest, BackoffIsCappedExponentialAndDeterministic) {
  BackoffPolicy policy;
  policy.base_ms = 1.0;
  policy.cap_ms = 16.0;
  policy.multiplier = 2.0;
  EXPECT_DOUBLE_EQ(policy.delay_ms(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(0, 4), 16.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(0, 40), 16.0);  // capped, no overflow
  // Stream does not matter without jitter.
  EXPECT_DOUBLE_EQ(policy.delay_ms(5, 3), policy.delay_ms(9, 3));
}

TEST_F(ServeTest, BackoffJitterIsBitwiseReproducible) {
  BackoffPolicy a;
  a.jitter = 0.5;
  BackoffPolicy b = a;
  bool any_spread = false;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    for (std::uint64_t attempt = 0; attempt < 6; ++attempt) {
      const double da = a.delay_ms(stream, attempt);
      // Bitwise-identical across policy copies (pure function).
      EXPECT_EQ(da, b.delay_ms(stream, attempt));
      // Jitter only shrinks the delay, never below (1 - jitter) of it.
      const double raw = BackoffPolicy{}.delay_ms(stream, attempt);
      EXPECT_LE(da, raw);
      EXPECT_GE(da, raw * (1.0 - a.jitter) - 1e-12);
      if (da != raw) any_spread = true;
    }
  }
  EXPECT_TRUE(any_spread);  // jitter actually does something
  // Different seeds give a different schedule somewhere.
  BackoffPolicy c = a;
  c.seed = a.seed + 1;
  bool differs = false;
  for (std::uint64_t attempt = 0; attempt < 8 && !differs; ++attempt) {
    differs = c.delay_ms(1, attempt) != a.delay_ms(1, attempt);
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------------ queue

serve::PendingPtr make_pending(std::uint64_t deadline_in_ms = 10000) {
  auto pending = std::make_shared<serve::PendingRequest>();
  pending->request.verb = serve::Verb::kClassify;
  pending->deadline_ns =
      obs::monotonic_ns() + deadline_in_ms * 1000000ull;
  return pending;
}

TEST_F(ServeTest, QueueFlushesOnBatchSize) {
  serve::RequestQueue queue(16);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.admit(make_pending()));
  const auto batch = queue.next_batch(4, 60ull * 1000000000ull);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0]->seq, 0u);  // admission order preserved
  EXPECT_EQ(batch[3]->seq, 3u);
}

TEST_F(ServeTest, QueueFlushesPartialBatchOnWindow) {
  serve::RequestQueue queue(16);
  ASSERT_TRUE(queue.admit(make_pending()));
  const std::uint64_t t0 = obs::monotonic_ns();
  const auto batch = queue.next_batch(8, 5ull * 1000000ull);  // 5 ms window
  const double waited_ms =
      static_cast<double>(obs::monotonic_ns() - t0) / 1e6;
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_LT(waited_ms, 2000.0);  // window, not forever
}

TEST_F(ServeTest, QueueShedsAtCapacityAndAfterShutdown) {
  serve::RequestQueue queue(2);
  EXPECT_TRUE(queue.admit(make_pending()));
  EXPECT_TRUE(queue.admit(make_pending()));
  EXPECT_FALSE(queue.admit(make_pending()));  // full → shed
  EXPECT_EQ(queue.depth(), 2u);
  queue.shutdown();
  EXPECT_FALSE(queue.admit(make_pending()));  // stopped → shed
  // Queued work remains drainable for a graceful shutdown.
  EXPECT_EQ(queue.next_batch(8, 0).size(), 2u);
  EXPECT_TRUE(queue.next_batch(8, 0).empty());
}

TEST_F(ServeTest, QueueCompletesExpiredRequestsWithoutDispatch) {
  serve::RequestQueue queue(8);
  auto outbox = std::make_shared<serve::Outbox>();
  auto expired = make_pending(0);  // deadline already passed
  expired->outbox = outbox;
  auto live = make_pending();
  ASSERT_TRUE(queue.admit(expired));
  ASSERT_TRUE(queue.admit(live));
  const auto batch = queue.next_batch(8, 0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].get(), live.get());
  EXPECT_TRUE(expired->completed());
  serve::Response response;
  ASSERT_TRUE(outbox->pop(response));
  EXPECT_EQ(response.status, serve::Status::kDeadlineExceeded);
}

TEST_F(ServeTest, RequeueJumpsTheLineAndCompletionIsOnceOnly) {
  serve::RequestQueue queue(8);
  auto first = make_pending();
  auto second = make_pending();
  ASSERT_TRUE(queue.admit(first));
  ASSERT_TRUE(queue.admit(second));
  auto drained = queue.next_batch(8, 0);
  ASSERT_EQ(drained.size(), 2u);
  // Requeue `second` with no delay: it must come back before new arrivals.
  queue.requeue(second, 0);
  auto fresh = make_pending();
  ASSERT_TRUE(queue.admit(fresh));
  const auto batch = queue.next_batch(1, 0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].get(), second.get());
  EXPECT_EQ(second->attempts.load(), 1u);

  // Once-only completion: the duplicate answer is dropped.
  auto outbox = std::make_shared<serve::Outbox>();
  second->outbox = outbox;
  EXPECT_TRUE(second->complete({serve::Status::kOk, 0, 1, ""}));
  EXPECT_FALSE(second->complete({serve::Status::kOk, 0, 2, ""}));
  serve::Response response;
  ASSERT_TRUE(outbox->pop(response));
  EXPECT_EQ(response.value, 1);
  outbox->close();
  EXPECT_FALSE(outbox->pop(response));
}

// ------------------------------------------------------------- model files

TEST_F(ServeTest, LoadModelSniffsSnapshotAndCheckpoint) {
  const std::string snap_path = write_model("pss_serve_model_a.bin", 7);
  const serve::ModelBundle snap = serve::load_model(snap_path, small_config());
  EXPECT_TRUE(snap.can_classify());
  EXPECT_EQ(snap.class_count, kClasses);
  ASSERT_TRUE(snap.config.single_wta());
  EXPECT_EQ(snap.model.blocks.front().neuron_count, kNeurons);
  EXPECT_EQ(snap.input_units, kChannels);

  WtaNetwork net(small_config(9));
  robust::TrainingCheckpoint cp = robust::TrainingCheckpoint::capture(net);
  const std::string cp_path = temp_path("pss_serve_model_cp.bin");
  robust::save_checkpoint(cp_path, cp);
  const serve::ModelBundle ckpt = serve::load_model(cp_path, small_config());
  EXPECT_FALSE(ckpt.can_classify());
  EXPECT_TRUE(ckpt.neuron_labels.empty());

  const std::string junk = temp_path("pss_serve_model_junk.bin");
  {
    std::ofstream out(junk, std::ios::binary);
    out << "definitely not a model";
  }
  EXPECT_THROW(serve::load_model(junk, small_config()), Error);
}

// ------------------------------------------------------------- end to end

TEST_F(ServeTest, ClassifyMatchesDirectReplayExactly) {
  const std::string model = write_model("pss_serve_e2e.bin", 7);
  serve::ServeServer server(base_options(model));
  serve::ServeClient client(server.port());

  EXPECT_EQ(client.ping().status, serve::Status::kOk);

  constexpr std::size_t kCount = 6;
  std::vector<serve::Response> responses;
  for (std::size_t i = 0; i < kCount; ++i) {
    responses.push_back(client.classify(test_image(i)));
  }
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(responses[i].status, serve::Status::kOk) << responses[i].message;
    // Serialized calls admit in order → request i has admission seq i.
    EXPECT_EQ(responses[i].value, expected_prediction(model, test_image(i), i))
        << "request " << i;
  }
  const serve::Response stats = client.stats();
  EXPECT_EQ(stats.status, serve::Status::kOk);
  EXPECT_NE(stats.message.find("completed=6"), std::string::npos)
      << stats.message;
}

TEST_F(ServeTest, FatalWorkerFaultIsRecoveredAndAnswersStayExact) {
  const std::string model = write_model("pss_serve_fault.bin", 7);
  // Second presentation attempt kills its worker mid-batch (fatal = the
  // worker thread exits without cleanup, leaving its inflight orphaned).
  robust::faults().arm_from_spec("serve.worker:after=1,count=1,kind=fatal");

  serve::ServeOptions opts = base_options(model);
  opts.heartbeat_interval_ms = 5;  // fast detection for the test
  serve::ServeServer server(opts);
  serve::ServeClient client(server.port());

  // Pipelined burst so one worker has a multi-request batch in flight when
  // it dies.
  constexpr std::size_t kCount = 10;
  for (std::size_t i = 0; i < kCount; ++i) {
    serve::Request request;
    request.verb = serve::Verb::kClassify;
    request.id = 1000 + i;
    request.body = test_image(i);
    client.send(request);
  }
  std::vector<serve::Response> responses;
  for (std::size_t i = 0; i < kCount; ++i) {
    responses.push_back(client.receive());
  }

  // Every admitted request is answered, correctly, despite the crash: the
  // requeued requests replay their admission seq on a healthy replica, and
  // present() is a pure function of (state, seq, rates).
  ASSERT_EQ(responses.size(), kCount);
  for (const serve::Response& response : responses) {
    ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
    const std::size_t i = static_cast<std::size_t>(response.id) - 1000;
    EXPECT_EQ(response.value, expected_prediction(model, test_image(i), i))
        << "request " << i;
  }
  EXPECT_EQ(robust::faults().fired("serve.worker"), 1u);
  EXPECT_GE(obs::metrics().counter("serve.requeue").value(), 1u);
  EXPECT_GE(obs::metrics().counter("serve.worker_restarts").value(), 1u);
  EXPECT_EQ(obs::metrics().counter("serve.completed").value(), kCount);

  // The recovery counters ride the existing Prometheus path unchanged.
  const std::string prom = obs::render_prometheus(obs::metrics());
  EXPECT_NE(prom.find("pss_serve_requeue "), std::string::npos);
  EXPECT_NE(prom.find("pss_serve_worker_restarts "), std::string::npos);
}

TEST_F(ServeTest, TransientFaultsRetryWithBackoffAndStayExact) {
  const std::string model = write_model("pss_serve_transient.bin", 7);
  robust::faults().arm_from_spec("serve.worker:count=3,kind=transient");

  serve::ServeServer server(base_options(model));
  serve::ServeClient client(server.port());
  constexpr std::size_t kCount = 8;
  for (std::size_t i = 0; i < kCount; ++i) {
    serve::Request request;
    request.verb = serve::Verb::kClassify;
    request.id = i + 1;
    request.body = test_image(i);
    client.send(request);
  }
  for (std::size_t i = 0; i < kCount; ++i) {
    const serve::Response response = client.receive();
    ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
    const std::size_t k = static_cast<std::size_t>(response.id) - 1;
    EXPECT_EQ(response.value, expected_prediction(model, test_image(k), k));
  }
  EXPECT_EQ(obs::metrics().counter("serve.requeue").value(), 3u);
  EXPECT_EQ(obs::metrics().counter("serve.worker_restarts").value(), 0u);
}

TEST_F(ServeTest, SaturationShedsWithExplicitOverloadedResponses) {
  const std::string model = write_model("pss_serve_overload.bin", 7);
  serve::ServeOptions opts = base_options(model);
  opts.workers = 1;
  opts.max_batch = 1;
  opts.window_ms = 0;
  opts.queue_capacity = 3;
  opts.t_present_ms = 200.0;  // slower drain than the loopback admit rate
  serve::ServeServer server(opts);
  serve::ServeClient client(server.port());

  constexpr std::size_t kCount = 30;
  for (std::size_t i = 0; i < kCount; ++i) {
    serve::Request request;
    request.verb = serve::Verb::kClassify;
    request.id = i + 1;
    request.body = test_image(i % 4);
    client.send(request);
  }
  std::size_t ok = 0, overloaded = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    const serve::Response response = client.receive();
    if (response.status == serve::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response.status, serve::Status::kOverloaded)
          << response.message;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kCount);
  EXPECT_GT(overloaded, 0u);  // backpressure was explicit, not silent
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(obs::metrics().counter("serve.shed").value(), overloaded);
  // The queue depth gauge never exceeded the configured bound.
  EXPECT_LE(obs::metrics().gauge("serve.queue_depth").value(), 3.0);
  // Shedding is visible to a Prometheus scrape, not just in-process.
  EXPECT_NE(obs::render_prometheus(obs::metrics()).find("pss_serve_shed "),
            std::string::npos);
}

TEST_F(ServeTest, TightDeadlinesAreShedAsDeadlineExceeded) {
  const std::string model = write_model("pss_serve_deadline.bin", 7);
  serve::ServeOptions opts = base_options(model);
  opts.workers = 1;
  opts.max_batch = 1;
  opts.window_ms = 0;
  opts.queue_capacity = 64;
  opts.t_present_ms = 200.0;
  serve::ServeServer server(opts);
  serve::ServeClient client(server.port());

  constexpr std::size_t kCount = 12;
  for (std::size_t i = 0; i < kCount; ++i) {
    serve::Request request;
    request.verb = serve::Verb::kClassify;
    request.id = i + 1;
    request.deadline_ms = 1;  // nearly everything behind the first expires
    request.body = test_image(i % 4);
    client.send(request);
  }
  std::size_t expired = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    const serve::Response response = client.receive();
    ASSERT_TRUE(response.status == serve::Status::kOk ||
                response.status == serve::Status::kDeadlineExceeded)
        << static_cast<int>(response.status) << " " << response.message;
    if (response.status == serve::Status::kDeadlineExceeded) ++expired;
  }
  EXPECT_GT(expired, 0u);
  EXPECT_EQ(obs::metrics().counter("serve.expired").value(), expired);
}

TEST_F(ServeTest, HotReloadIsTornFreeAndDeterministic) {
  const std::string model_a = write_model("pss_serve_reload_a.bin", 7);
  const std::string model_b = write_model("pss_serve_reload_b.bin", 1234);
  const std::string live = temp_path("pss_serve_reload_live.bin");

  // Two full passes must produce bitwise-identical response sequences.
  std::vector<std::vector<std::int64_t>> runs;
  for (int run = 0; run < 2; ++run) {
    std::filesystem::copy_file(
        model_a, live, std::filesystem::copy_options::overwrite_existing);
    serve::ServeServer server(base_options(live));
    serve::ServeClient client(server.port());
    std::vector<std::int64_t> values;

    constexpr std::size_t kHalf = 4;
    for (std::size_t i = 0; i < kHalf; ++i) {
      const serve::Response r = client.classify(test_image(i));
      ASSERT_EQ(r.status, serve::Status::kOk) << r.message;
      values.push_back(r.value);
      EXPECT_EQ(r.value, expected_prediction(model_a, test_image(i), i));
    }
    std::filesystem::copy_file(
        model_b, live, std::filesystem::copy_options::overwrite_existing);
    const serve::Response reloaded = client.reload();
    ASSERT_EQ(reloaded.status, serve::Status::kOk) << reloaded.message;
    EXPECT_EQ(reloaded.value, 2);  // generation bumped
    for (std::size_t i = 0; i < kHalf; ++i) {
      const std::uint64_t seq = kHalf + i;
      const serve::Response r = client.classify(test_image(i));
      ASSERT_EQ(r.status, serve::Status::kOk) << r.message;
      values.push_back(r.value);
      // New requests see the new weights — exactly.
      EXPECT_EQ(r.value, expected_prediction(model_b, test_image(i), seq));
    }
    runs.push_back(std::move(values));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST_F(ServeTest, ReloadRacingPipelinedTrafficIsNeverTorn) {
  const std::string model_a = write_model("pss_serve_race_a.bin", 7);
  const std::string model_b = write_model("pss_serve_race_b.bin", 1234);
  const std::string live = temp_path("pss_serve_race_live.bin");
  std::filesystem::copy_file(
      model_a, live, std::filesystem::copy_options::overwrite_existing);

  serve::ServeServer server(base_options(live));
  serve::ServeClient traffic(server.port());
  constexpr std::size_t kCount = 12;
  for (std::size_t i = 0; i < kCount; ++i) {
    serve::Request request;
    request.verb = serve::Verb::kClassify;
    request.id = i + 1;
    request.body = test_image(i % 3);
    traffic.send(request);
  }
  // Swap the file and reload from a second connection mid-burst.
  std::filesystem::copy_file(
      model_b, live, std::filesystem::copy_options::overwrite_existing);
  serve::ServeClient admin(server.port());
  ASSERT_EQ(admin.reload().status, serve::Status::kOk);

  for (std::size_t i = 0; i < kCount; ++i) {
    const serve::Response response = traffic.receive();
    ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
    const std::size_t k = static_cast<std::size_t>(response.id) - 1;
    const int old_expected =
        expected_prediction(model_a, test_image(k % 3), k);
    const int new_expected =
        expected_prediction(model_b, test_image(k % 3), k);
    // Each answer comes wholly from one model generation — never a blend.
    EXPECT_TRUE(response.value == old_expected ||
                response.value == new_expected)
        << "request " << k << ": got " << response.value << ", old "
        << old_expected << ", new " << new_expected;
  }
}

TEST_F(ServeTest, CheckpointModelServesTrainButRefusesClassify) {
  WtaNetwork net(small_config(11));
  robust::TrainingCheckpoint cp = robust::TrainingCheckpoint::capture(net);
  const std::string path = temp_path("pss_serve_ckpt_model.bin");
  robust::save_checkpoint(path, cp);

  serve::ServeServer server(base_options(path));
  serve::ServeClient client(server.port());
  const serve::Response refused = client.classify(test_image(0));
  EXPECT_EQ(refused.status, serve::Status::kError);
  EXPECT_NE(refused.message.find("labels"), std::string::npos);

  serve::Request train;
  train.verb = serve::Verb::kTrain;
  train.id = 9;
  train.body = test_image(0);
  const serve::Response trained = client.call(train);
  EXPECT_EQ(trained.status, serve::Status::kOk) << trained.message;
  // Online learning published a new model generation.
  EXPECT_GE(server.model_generation(), 2u);
}

TEST_F(ServeTest, OversizedFrameDropsConnectionNotServer) {
  const std::string model = write_model("pss_serve_frame.bin", 7);
  serve::ServeServer server(base_options(model));

  const int fd = serve::net::connect_loopback(server.port(), 2000);
  // Hand-crafted frame prefix claiming ~2 GiB: the server must refuse to
  // allocate and drop the connection.
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_TRUE(serve::net::write_all(fd, huge, sizeof huge, 1000));
  std::uint8_t sink = 0;
  // Server closes without a response.
  EXPECT_LE(serve::net::read_some(fd, &sink, 1, 3000), 0);
  serve::net::close_fd(fd);

  // The daemon survived and still serves.
  serve::ServeClient client(server.port());
  EXPECT_EQ(client.ping().status, serve::Status::kOk);
}

// ------------------------------------------------------- stacked models

/// A labelled stacked (conv→wta) model whose raw input is 8×8 = kChannels
/// pixels, so the existing test_image frames drive it unchanged.
std::string write_stacked_model(const std::string& name, std::uint64_t seed) {
  graph::GraphConfig cfg = graph::graph_config_from_spec(
      "conv:filters=4,kernel=3;wta:neurons=" + std::to_string(kNeurons),
      small_config(seed));
  cfg.input = graph::LayerShape{1, 8, 8};
  graph::NetworkGraph net(cfg);
  net.set_neuron_labels(test_labels());
  const std::string path = temp_path(name);
  graph::save_graph_model(path, graph::GraphModel::capture(net));
  return path;
}

TEST_F(ServeTest, StackedModelServesAndMatchesDirectReplay) {
  const std::string model = write_stacked_model("pss_serve_stack.bin", 7);
  serve::ServeServer server(base_options(model));
  serve::ServeClient client(server.port());

  constexpr std::size_t kCount = 4;
  for (std::size_t i = 0; i < kCount; ++i) {
    const serve::Response r = client.classify(test_image(i));
    ASSERT_EQ(r.status, serve::Status::kOk) << r.message;
    // Admission seq i replayed through the full conv→wta stack must agree
    // with the daemon exactly — the purity contract extends to deep models.
    EXPECT_EQ(r.value, expected_prediction(model, test_image(i), i))
        << "request " << i;
  }
}

TEST_F(ServeTest, HotReloadSwapsSingleLayerForStackedModel) {
  const std::string single = write_model("pss_serve_stack_single.bin", 7);
  const std::string stacked =
      write_stacked_model("pss_serve_stack_deep.bin", 1234);
  const std::string live = temp_path("pss_serve_stack_live.bin");
  std::filesystem::copy_file(
      single, live, std::filesystem::copy_options::overwrite_existing);

  serve::ServeServer server(base_options(live));
  serve::ServeClient client(server.port());
  const serve::Response before = client.classify(test_image(0));
  ASSERT_EQ(before.status, serve::Status::kOk) << before.message;
  EXPECT_EQ(before.value, expected_prediction(single, test_image(0), 0));

  // Swap the live file for a stacked model: same raw input size, deeper
  // architecture — reload must publish it atomically.
  std::filesystem::copy_file(
      stacked, live, std::filesystem::copy_options::overwrite_existing);
  const serve::Response reloaded = client.reload();
  ASSERT_EQ(reloaded.status, serve::Status::kOk) << reloaded.message;
  EXPECT_EQ(reloaded.value, 2);  // generation bumped

  const serve::Response after = client.classify(test_image(1));
  ASSERT_EQ(after.status, serve::Status::kOk) << after.message;
  EXPECT_EQ(after.value, expected_prediction(stacked, test_image(1), 1));
}

TEST_F(ServeTest, StackedCheckpointServesTrainAndClassify) {
  // A labelled stacked checkpoint (v2) loads through the same unified
  // reader: classify works (labels present) and train refines the last
  // block, publishing a new generation.
  graph::GraphConfig cfg = graph::graph_config_from_spec(
      "conv:filters=4,kernel=3;wta:neurons=" + std::to_string(kNeurons),
      small_config(21));
  cfg.input = graph::LayerShape{1, 8, 8};
  graph::NetworkGraph net(cfg);
  net.set_neuron_labels(test_labels());
  robust::StackedCheckpoint cp;
  cp.base = robust::TrainingCheckpoint::capture(net.block(0));
  cp.arch = graph::canonical_layers_spec(net.config());
  cp.input_channels = 1;
  cp.input_height = 8;
  cp.input_width = 8;
  cp.labels.assign(net.neuron_labels().begin(), net.neuron_labels().end());
  const std::string path = temp_path("pss_serve_stack_ckpt.bin");
  robust::save_stacked_checkpoint(path, cp);

  serve::ServeServer server(base_options(path));
  serve::ServeClient client(server.port());
  const serve::Response classified = client.classify(test_image(0));
  ASSERT_EQ(classified.status, serve::Status::kOk) << classified.message;

  serve::Request train;
  train.verb = serve::Verb::kTrain;
  train.id = 42;
  train.body = test_image(1);
  const serve::Response trained = client.call(train);
  EXPECT_EQ(trained.status, serve::Status::kOk) << trained.message;
  EXPECT_GE(server.model_generation(), 2u);
}

TEST_F(ServeTest, ShutdownVerbStopsTheServerGracefully) {
  const std::string model = write_model("pss_serve_shutdown.bin", 7);
  serve::ServeServer server(base_options(model));
  serve::ServeClient client(server.port());
  ASSERT_EQ(client.classify(test_image(0)).status, serve::Status::kOk);
  EXPECT_EQ(client.shutdown_server().status, serve::Status::kOk);
  server.wait();  // returns because the verb requested shutdown
  server.stop();
  EXPECT_TRUE(server.stopping());
}

}  // namespace
}  // namespace pss
