// Tests for the counter-based Philox RNG — the cuRAND substitute.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "pss/common/rng.hpp"

namespace pss {
namespace {

TEST(Philox, IsDeterministic) {
  const std::array<std::uint32_t, 4> ctr = {1, 2, 3, 4};
  const std::array<std::uint32_t, 2> key = {5, 6};
  EXPECT_EQ(philox4x32(ctr, key), philox4x32(ctr, key));
}

TEST(Philox, DifferentCountersGiveDifferentBlocks) {
  const std::array<std::uint32_t, 2> key = {5, 6};
  EXPECT_NE(philox4x32({1, 0, 0, 0}, key), philox4x32({2, 0, 0, 0}, key));
}

TEST(Philox, DifferentKeysGiveDifferentBlocks) {
  const std::array<std::uint32_t, 4> ctr = {1, 2, 3, 4};
  EXPECT_NE(philox4x32(ctr, {1, 0}), philox4x32(ctr, {2, 0}));
}

TEST(CounterRng, SameSeedStreamCounterReproduces) {
  CounterRng a(42, 7);
  CounterRng b(42, 7);
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_EQ(a.bits(c), b.bits(c));
  }
}

TEST(CounterRng, DrawsAreIndexedNotSequential) {
  CounterRng rng(42, 7);
  const std::uint32_t fifth = rng.bits(5);
  rng.bits(0);
  rng.bits(99);
  EXPECT_EQ(fifth, rng.bits(5)) << "order of queries must not matter";
}

TEST(CounterRng, DifferentSeedsDiffer) {
  CounterRng a(1, 0);
  CounterRng b(2, 0);
  int equal = 0;
  for (std::uint64_t c = 0; c < 64; ++c) {
    if (a.bits(c) == b.bits(c)) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(CounterRng, DifferentStreamsDiffer) {
  CounterRng a(1, 0);
  CounterRng b(1, 1);
  int equal = 0;
  for (std::uint64_t c = 0; c < 64; ++c) {
    if (a.bits(c) == b.bits(c)) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(CounterRng, UniformInUnitInterval) {
  CounterRng rng(3, 0);
  for (std::uint64_t c = 0; c < 1000; ++c) {
    const double u = rng.uniform(c);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, UniformMeanIsHalf) {
  CounterRng rng(3, 0);
  double sum = 0.0;
  const int n = 20000;
  for (int c = 0; c < n; ++c) sum += rng.uniform(static_cast<std::uint64_t>(c));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(CounterRng, UniformRangeRespectsBounds) {
  CounterRng rng(3, 0);
  for (std::uint64_t c = 0; c < 500; ++c) {
    const double u = rng.uniform(c, -2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(CounterRng, BernoulliExtremes) {
  CounterRng rng(3, 0);
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_FALSE(rng.bernoulli(c, 0.0));
    EXPECT_TRUE(rng.bernoulli(c, 1.0));
    EXPECT_FALSE(rng.bernoulli(c, -1.0));
    EXPECT_TRUE(rng.bernoulli(c, 2.0));
  }
}

TEST(CounterRng, BernoulliMatchesProbability) {
  CounterRng rng(9, 2);
  const double p = 0.3;
  int hits = 0;
  const int n = 20000;
  for (int c = 0; c < n; ++c) {
    if (rng.bernoulli(static_cast<std::uint64_t>(c), p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(CounterRng, BelowStaysInRange) {
  CounterRng rng(5, 0);
  for (std::uint64_t c = 0; c < 1000; ++c) {
    EXPECT_LT(rng.below(c, 13), 13u);
  }
}

TEST(CounterRng, BelowCoversAllValues) {
  CounterRng rng(5, 0);
  std::set<std::uint32_t> seen;
  for (std::uint64_t c = 0; c < 500; ++c) seen.insert(rng.below(c, 7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(CounterRng, NormalMomentsAreStandard) {
  CounterRng rng(11, 0);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int c = 0; c < n; ++c) {
    const double z = rng.normal(static_cast<std::uint64_t>(c));
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(CounterRng, ForkIsIndependentOfParent) {
  CounterRng parent(42, 7);
  CounterRng child = parent.fork(0);
  EXPECT_EQ(child.seed(), parent.seed());
  EXPECT_NE(child.stream(), parent.stream())
      << "fork(0) must not alias the parent stream";
}

TEST(CounterRng, ForksAreMutuallyDistinct) {
  CounterRng parent(42, 7);
  std::set<std::uint64_t> streams;
  for (std::uint64_t i = 0; i < 100; ++i) {
    streams.insert(parent.fork(i).stream());
  }
  EXPECT_EQ(streams.size(), 100u);
}

TEST(SequentialRng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<SequentialRng>);
  SequentialRng rng(1);
  EXPECT_NE(rng(), rng()) << "sequential draws should differ";
}

TEST(SequentialRng, SameSeedSameSequence) {
  SequentialRng a(7);
  SequentialRng b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(SequentialRng, UniformHelpersInRange) {
  SequentialRng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.uniform(), 1.0);
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    EXPECT_LT(rng.below(5), 5u);
  }
}

// Distribution sanity over several (seed, stream) combinations: a chi-squared
// style uniformity check on bytes.
class RngDistribution
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(RngDistribution, BytesRoughlyUniform) {
  const auto [seed, stream] = GetParam();
  CounterRng rng(seed, stream);
  std::vector<int> buckets(16, 0);
  const int n = 16000;
  for (int c = 0; c < n; ++c) {
    buckets[rng.bits(static_cast<std::uint64_t>(c)) & 0xF]++;
  }
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(buckets[b], n / 16, n / 16 * 0.15) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStreams, RngDistribution,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 0},
                      std::pair<std::uint64_t, std::uint64_t>{1, 0},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{0xdeadbeef, 42},
                      std::pair<std::uint64_t, std::uint64_t>{~0ull, ~0ull}));

}  // namespace
}  // namespace pss
