// Tests for the LIF (paper eq. 1-3) and Izhikevich neuron models.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/neuron/characterize.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/neuron/lif.hpp"

namespace pss {
namespace {

TEST(LifModel, PaperParametersMatchSectionIIID) {
  const LifParameters p = paper_lif_parameters();
  EXPECT_DOUBLE_EQ(p.v_threshold, -60.2);
  EXPECT_DOUBLE_EQ(p.v_reset, -74.7);
  EXPECT_DOUBLE_EQ(p.v_init, -70.0);
  EXPECT_DOUBLE_EQ(p.a, -6.77);
  EXPECT_DOUBLE_EQ(p.b, -0.0989);
  EXPECT_DOUBLE_EQ(p.c, 0.314);
}

TEST(LifModel, LeakEquilibriumBelowThreshold) {
  const LifParameters p = paper_lif_parameters();
  const double v_eq = -p.a / p.b;  // where dv/dt = 0 at I = 0
  EXPECT_LT(v_eq, p.v_threshold);
  // Integrating from init with no input converges to the equilibrium.
  double v = p.v_init;
  for (int t = 0; t < 500; ++t) v = lif_integrate(p, v, 0.0, 1.0);
  EXPECT_NEAR(v, v_eq, 0.1);
}

TEST(LifModel, SilentWithoutInput) {
  EXPECT_DOUBLE_EQ(lif_spiking_frequency(paper_lif_parameters(), 0.0, 1000.0),
                   0.0);
}

TEST(LifModel, RheobaseNearAnalyticValue) {
  // Firing requires a + b*v_th + c*I > 0 at the threshold.
  const LifParameters p = paper_lif_parameters();
  const double analytic = -(p.a + p.b * p.v_threshold) / p.c;
  const double measured = lif_rheobase(p);
  EXPECT_NEAR(measured, analytic, 0.1);
}

TEST(LifModel, FiCurveMonotoneAboveRheobase) {
  const auto curve = lif_fi_curve(paper_lif_parameters(), 3.0, 30.0, 10, 1000.0);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].frequency_hz, curve[i - 1].frequency_hz)
        << "f-I curve must be non-decreasing (Fig. 1a)";
  }
  EXPECT_GT(curve.back().frequency_hz, 0.0);
}

TEST(LifPopulation, RequiresSaneParameters) {
  LifParameters p = paper_lif_parameters();
  p.b = 0.1;  // non-leaky
  EXPECT_THROW(LifPopulation(10, p), Error);
  p = paper_lif_parameters();
  p.v_reset = -50.0;  // above threshold
  EXPECT_THROW(LifPopulation(10, p), Error);
  EXPECT_THROW(LifPopulation(0, paper_lif_parameters()), Error);
}

TEST(LifPopulation, SpikesUnderStrongCurrent) {
  LifPopulation pop(5, paper_lif_parameters());
  std::vector<double> current(5, 50.0);
  std::vector<NeuronIndex> spikes;
  int total = 0;
  for (int t = 1; t <= 100; ++t) {
    pop.step(current, t, 1.0, spikes);
    total += static_cast<int>(spikes.size());
  }
  EXPECT_GT(total, 0);
  EXPECT_EQ(pop.spike_count(), static_cast<std::uint64_t>(total));
}

TEST(LifPopulation, ResetRestoresInitialState) {
  LifPopulation pop(3, paper_lif_parameters());
  std::vector<double> current(3, 50.0);
  std::vector<NeuronIndex> spikes;
  for (int t = 1; t <= 50; ++t) pop.step(current, t, 1.0, spikes);
  pop.reset();
  EXPECT_EQ(pop.spike_count(), 0u);
  for (double v : pop.membrane()) EXPECT_DOUBLE_EQ(v, -70.0);
  for (double t : pop.last_spike_time()) EXPECT_EQ(t, kNeverSpiked);
}

TEST(LifPopulation, InhibitionPinsNeuronAtReset) {
  LifPopulation pop(2, paper_lif_parameters());
  pop.inhibit(0, 1000.0);
  std::vector<double> current(2, 50.0);
  std::vector<NeuronIndex> spikes;
  int spikes0 = 0;
  int spikes1 = 0;
  for (int t = 1; t <= 200; ++t) {
    pop.step(current, t, 1.0, spikes);
    for (NeuronIndex j : spikes) (j == 0 ? spikes0 : spikes1)++;
  }
  EXPECT_EQ(spikes0, 0) << "inhibited neuron must not spike";
  EXPECT_GT(spikes1, 0);
  EXPECT_DOUBLE_EQ(pop.membrane()[0], paper_lif_parameters().v_reset);
}

TEST(LifPopulation, InhibitAllExceptSparesWinner) {
  LifPopulation pop(4, paper_lif_parameters());
  pop.inhibit_all_except(2, 500.0);
  std::vector<double> current(4, 50.0);
  std::vector<NeuronIndex> spikes;
  std::vector<int> counts(4, 0);
  for (int t = 1; t <= 100; ++t) {
    pop.step(current, t, 1.0, spikes);
    for (NeuronIndex j : spikes) counts[j]++;
  }
  EXPECT_GT(counts[2], 0);
  EXPECT_EQ(counts[0] + counts[1] + counts[3], 0);
}

TEST(LifPopulation, InhibitionExpires) {
  LifPopulation pop(1, paper_lif_parameters());
  pop.inhibit(0, 50.0);
  std::vector<double> current(1, 50.0);
  std::vector<NeuronIndex> spikes;
  int before = 0;
  int after = 0;
  for (int t = 1; t <= 200; ++t) {
    pop.step(current, t, 1.0, spikes);
    (t <= 50 ? before : after) += static_cast<int>(spikes.size());
  }
  EXPECT_EQ(before, 0);
  EXPECT_GT(after, 0);
}

TEST(LifPopulation, ThresholdOffsetRaisesBar) {
  LifPopulation pop(2, paper_lif_parameters());
  const std::vector<double> offsets = {0.0, 500.0};  // neuron 1 unreachable
  std::vector<double> current(2, 50.0);
  std::vector<NeuronIndex> spikes;
  std::vector<int> counts(2, 0);
  for (int t = 1; t <= 100; ++t) {
    pop.step(current, t, 1.0, spikes, offsets);
    for (NeuronIndex j : spikes) counts[j]++;
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

TEST(LifPopulation, RefractoryPeriodCapsRate) {
  LifParameters p = paper_lif_parameters();
  const double free_rate = lif_spiking_frequency(p, 50.0, 1000.0);
  p.refractory_ms = 20.0;  // max 50 Hz
  LifPopulation pop(1, p);
  std::vector<double> current(1, 50.0);
  std::vector<NeuronIndex> spikes;
  int count = 0;
  for (int t = 1; t <= 1000; ++t) {
    pop.step(current, t, 1.0, spikes);
    count += static_cast<int>(spikes.size());
  }
  EXPECT_LE(count, 52);
  EXPECT_GT(free_rate, 52.0) << "test needs a strongly driven neuron";
}

TEST(LifPopulation, RejectsWrongSizeInputs) {
  LifPopulation pop(4, paper_lif_parameters());
  std::vector<double> wrong(3, 0.0);
  std::vector<NeuronIndex> spikes;
  EXPECT_THROW(pop.step(wrong, 1.0, 1.0, spikes), Error);
  EXPECT_THROW(pop.inhibit(9, 10.0), Error);
}

TEST(Izhikevich, RegularSpikingFiresTonically) {
  const double f =
      izhikevich_spiking_frequency(izhikevich_regular_spiking(), 10.0, 2000.0);
  EXPECT_GT(f, 1.0);
  EXPECT_LT(f, 200.0);
}

TEST(Izhikevich, FastSpikingOutpacesRegular) {
  const double rs =
      izhikevich_spiking_frequency(izhikevich_regular_spiking(), 10.0, 2000.0);
  const double fs =
      izhikevich_spiking_frequency(izhikevich_fast_spiking(), 10.0, 2000.0);
  EXPECT_GT(fs, rs) << "FS neurons fire faster at equal drive";
}

TEST(Izhikevich, SilentWithoutInput) {
  EXPECT_DOUBLE_EQ(
      izhikevich_spiking_frequency(izhikevich_regular_spiking(), 0.0, 1000.0),
      0.0);
}

TEST(Izhikevich, FiCurveMonotone) {
  const auto curve =
      izhikevich_fi_curve(izhikevich_regular_spiking(), 2.0, 20.0, 8, 1000.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].frequency_hz, curve[i - 1].frequency_hz - 1.0);
  }
}

TEST(IzhikevichPopulation, StepAndResetBehave) {
  IzhikevichPopulation pop(3, izhikevich_regular_spiking());
  std::vector<double> current(3, 15.0);
  std::vector<NeuronIndex> spikes;
  int total = 0;
  for (int t = 1; t <= 500; ++t) {
    pop.step(current, t, 1.0, spikes);
    total += static_cast<int>(spikes.size());
  }
  EXPECT_GT(total, 0);
  pop.reset();
  EXPECT_EQ(pop.spike_count(), 0u);
  for (double v : pop.membrane()) EXPECT_DOUBLE_EQ(v, -65.0);
}

// Property sweep: the LIF population kernel must agree exactly with the
// single-neuron integrator for any current level.
class LifKernelEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(LifKernelEquivalence, PopulationMatchesScalarIntegration) {
  const double current = GetParam();
  const LifParameters p = paper_lif_parameters();
  LifPopulation pop(1, p);
  std::vector<double> i1(1, current);
  std::vector<NeuronIndex> spikes;
  double v = p.v_init;
  for (int t = 1; t <= 300; ++t) {
    pop.step(i1, t, 1.0, spikes);
    v = lif_integrate(p, v, current, 1.0);
    if (v > p.v_threshold) {
      v = p.v_reset;
      EXPECT_EQ(spikes.size(), 1u) << "step " << t;
    } else {
      EXPECT_TRUE(spikes.empty()) << "step " << t;
    }
    EXPECT_DOUBLE_EQ(pop.membrane()[0], v) << "step " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Currents, LifKernelEquivalence,
                         ::testing::Values(0.0, 1.0, 2.6, 5.0, 10.0, 25.0,
                                           60.0));

}  // namespace
}  // namespace pss
