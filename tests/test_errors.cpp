// Systematic failure injection: every public API must reject invalid input
// with pss::Error (never UB or silent misbehaviour). Grouped here so the
// error-handling contract is auditable in one place; happy-path behaviour is
// tested in the per-module files.
#include <gtest/gtest.h>

#include "pss/common/error.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/encoding/frequency_control.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/pgm.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/neuron/adex.hpp"
#include "pss/neuron/characterize.hpp"
#include "pss/stats/histogram.hpp"
#include "pss/stats/raster.hpp"
#include "pss/stats/spiketrain.hpp"
#include "pss/stats/summary.hpp"

namespace pss {
namespace {

TEST(ErrorContract, RequireMacroThrowsWithLocation) {
  try {
    PSS_REQUIRE(false, "the message");
    FAIL() << "PSS_REQUIRE(false) must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_errors.cpp"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
  }
}

TEST(ErrorContract, NeuronModels) {
  LifParameters lif = paper_lif_parameters();
  lif.v_reset = lif.v_threshold + 1.0;
  EXPECT_THROW(LifPopulation(4, lif), Error);
  EXPECT_THROW(IzhikevichPopulation(0, izhikevich_regular_spiking()), Error);
  AdexParameters adex = adex_regular_spiking();
  adex.tau_w = 0.0;
  EXPECT_THROW(AdexPopulation(4, adex), Error);
}

TEST(ErrorContract, Characterization) {
  EXPECT_THROW(lif_spiking_frequency(paper_lif_parameters(), 5.0,
                                     /*duration=*/100.0, /*settle=*/200.0),
               Error);
  EXPECT_THROW(lif_fi_curve(paper_lif_parameters(), 5.0, 1.0, 10), Error);
  EXPECT_THROW(lif_fi_curve(paper_lif_parameters(), 1.0, 5.0, 1), Error);
  // Rheobase with an upper bound that cannot elicit spiking.
  EXPECT_THROW(lif_rheobase(paper_lif_parameters(), 0.1), Error);
}

TEST(ErrorContract, Encoders) {
  EXPECT_THROW(PixelFrequencyMap(5.0, 1.0), Error);
  EXPECT_THROW(FrequencyControl(-1.0, 22.0, 500.0), Error);
  EXPECT_THROW(FrequencyControl(1.0, 22.0, 0.0), Error);
}

TEST(ErrorContract, NetworkGeometry) {
  WtaConfig cfg;
  cfg.neuron_count = 0;
  EXPECT_THROW(WtaNetwork{cfg}, Error);
  cfg = WtaConfig{};
  cfg.input_channels = 0;
  EXPECT_THROW(WtaNetwork{cfg}, Error);
  cfg = WtaConfig{};
  cfg.dt = 0.0;
  EXPECT_THROW(WtaNetwork{cfg}, Error);
  cfg = WtaConfig{};
  cfg.spike_amplitude = -1.0;
  EXPECT_THROW(WtaNetwork{cfg}, Error);
  cfg = WtaConfig{};
  cfg.init_g_lo = 0.9;
  cfg.init_g_hi = 0.1;
  EXPECT_THROW(WtaNetwork{cfg}, Error);
}

TEST(ErrorContract, LearningPipeline) {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                         StdpKind::kStochastic, 8);
  cfg.input_channels = 16;
  WtaNetwork net(cfg);

  // Trainer rejects images whose pixel count mismatches the network.
  UnsupervisedTrainer trainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 100.0});
  Dataset wrong;
  wrong.push_back(Image(8, 8));  // 64 pixels vs 16 channels
  EXPECT_THROW(trainer.train(wrong), Error);

  // Zero presentation time.
  EXPECT_THROW(UnsupervisedTrainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 0.0}), Error);

  // Labeler rejects an empty labelling set.
  const PixelFrequencyMap map(1.0, 22.0);
  EXPECT_THROW(label_neurons(net, Dataset{}, map, 100.0), Error);
}

TEST(ErrorContract, ExperimentHarness) {
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 10, .test_count = 10, .seed = 1});
  ExperimentSpec spec;
  spec.neuron_count = 5;
  spec.train_images = 5;
  spec.label_images = 10;  // consumes the whole test set...
  spec.eval_images = 5;    // ...leaving nothing to evaluate on
  EXPECT_THROW(run_learning_experiment(spec, data), Error);

  LabeledDataset empty;
  spec.label_images = 5;
  EXPECT_THROW(run_learning_experiment(spec, empty), Error);
}

TEST(ErrorContract, StatsInputs) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(SpikeRaster(0, 100.0), Error);
  EXPECT_THROW(SpikeRaster(4, 0.0), Error);
  const std::vector<double> three = {1.0, 2.0, 3.0};
  EXPECT_THROW(quartile_contrast(three), Error);
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(pearson_correlation(a, b), Error);
  EXPECT_THROW(van_rossum_distance(a, b, 0.0), Error);
  EXPECT_THROW(fano_factor(a, 100.0, 100.0), Error);  // < 2 windows
}

TEST(ErrorContract, FileIo) {
  EXPECT_THROW(read_pgm("/nonexistent/file.pgm"), Error);
  EXPECT_THROW(write_pgm("/nonexistent/dir/file.pgm", Image{}), Error);
  std::vector<double> short_row(10, 0.0);
  EXPECT_THROW(conductance_to_image(short_row, 28, 28, 0.0, 1.0), Error);
  EXPECT_THROW(tile_images({}, 2, 2), Error);
}

TEST(ErrorContract, ConductanceAndWindows) {
  ConductanceMatrix m(2, 4);
  EXPECT_THROW(m.row(5), Error);
  EXPECT_THROW(m.row_mut(5), Error);
  StdpUpdaterConfig stdp;
  stdp.det_window_ms = 0.0;
  EXPECT_THROW(StdpUpdater{stdp}, Error);
}

}  // namespace
}  // namespace pss
