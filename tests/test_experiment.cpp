// Tests for the experiment harness and sweep utilities.
#include <gtest/gtest.h>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/experiment/sweep.hpp"

namespace pss {
namespace {

class ExperimentHarness : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kWarn);
    data_ = new LabeledDataset(make_synthetic_digits(
        {.train_count = 60, .test_count = 120, .seed = 31}));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static ExperimentSpec tiny_spec() {
    ExperimentSpec spec;
    spec.name = "tiny";
    spec.neuron_count = 30;
    spec.train_images = 40;
    spec.label_images = 60;
    spec.eval_images = 60;
    spec.t_label_ms = 150.0;
    spec.t_infer_ms = 150.0;
    return spec;
  }

  static LabeledDataset* data_;
};

LabeledDataset* ExperimentHarness::data_ = nullptr;

TEST_F(ExperimentHarness, SpecBuildsConfigsFromTable1) {
  ExperimentSpec spec = tiny_spec();
  spec.option = LearningOption::k8Bit;
  spec.kind = StdpKind::kDeterministic;
  spec.rounding = RoundingMode::kStochastic;
  const WtaConfig net = spec.network_config();
  EXPECT_EQ(net.neuron_count, 30u);
  EXPECT_EQ(net.stdp.kind, StdpKind::kDeterministic);
  EXPECT_EQ(net.stdp.rounding, RoundingMode::kStochastic);
  ASSERT_TRUE(net.stdp.format.has_value());
  EXPECT_EQ(net.stdp.format->name(), "Q1.7");
  const TrainerConfig tc = spec.trainer_config();
  EXPECT_DOUBLE_EQ(tc.f_max_hz, 22.0);
}

TEST_F(ExperimentHarness, SpecOverridesFrequencyAndTime) {
  ExperimentSpec spec = tiny_spec();
  spec.f_min_hz = 5.0;
  spec.f_max_hz = 78.0;
  spec.t_learn_ms = 100.0;
  const TrainerConfig tc = spec.trainer_config();
  EXPECT_DOUBLE_EQ(tc.f_min_hz, 5.0);
  EXPECT_DOUBLE_EQ(tc.f_max_hz, 78.0);
  EXPECT_DOUBLE_EQ(tc.t_learn_ms, 100.0);
}

TEST_F(ExperimentHarness, RunProducesCompleteResult) {
  const ExperimentResult r = run_learning_experiment(tiny_spec(), *data_);
  EXPECT_EQ(r.name, "tiny");
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_NEAR(r.error_rate, 1.0 - r.accuracy, 1e-12);
  EXPECT_GT(r.labelled_neurons, 0u);
  EXPECT_GT(r.train_wall_seconds, 0.0);
  EXPECT_GE(r.total_wall_seconds, r.train_wall_seconds);
  EXPECT_DOUBLE_EQ(r.simulated_learning_ms, 40 * 500.0);
  EXPECT_GT(r.conductance_contrast, 0.0);
  ASSERT_EQ(r.error_trace.size(), 1u) << "no checkpoints -> final point only";
  EXPECT_EQ(r.error_trace[0].images_seen, 40u);
}

TEST_F(ExperimentHarness, CheckpointsProduceErrorTrace) {
  ExperimentSpec spec = tiny_spec();
  spec.checkpoints = 2;
  spec.checkpoint_eval_images = 30;
  const ExperimentResult r = run_learning_experiment(spec, *data_);
  ASSERT_EQ(r.error_trace.size(), 3u);
  EXPECT_LT(r.error_trace[0].images_seen, r.error_trace[1].images_seen);
  EXPECT_LT(r.error_trace[1].images_seen, r.error_trace[2].images_seen);
  for (const auto& p : r.error_trace) {
    EXPECT_GE(p.error_rate, 0.0);
    EXPECT_LE(p.error_rate, 1.0);
  }
}

TEST_F(ExperimentHarness, ConductanceMapsMatchNeuronCount) {
  WtaNetwork net(tiny_spec().network_config());
  const auto maps = conductance_maps(net, 10);
  ASSERT_EQ(maps.size(), 10u);
  EXPECT_EQ(maps[0].width, kImageSide);
  EXPECT_EQ(maps[0].height, kImageSide);
  const auto all = conductance_maps(net, 999);
  EXPECT_EQ(all.size(), 30u);
}

TEST_F(ExperimentHarness, EdgeFractionsDetectCollapse) {
  ConductanceMatrix m(2, 10, 0.0, 1.0);
  for (ChannelIndex c = 0; c < 10; ++c) {
    m.set(0, c, 0.0);
    m.set(1, c, 1.0);
  }
  const auto [bottom, top] = edge_fractions(m);
  EXPECT_DOUBLE_EQ(bottom, 0.5);
  EXPECT_DOUBLE_EQ(top, 0.5);
}

TEST_F(ExperimentHarness, SweepAppliesMutation) {
  const std::vector<double> values = {10.0, 20.0};
  std::vector<double> seen;
  const auto points =
      sweep(tiny_spec(), *data_, values,
            [&](ExperimentSpec& spec, double v) {
              seen.push_back(v);
              spec.train_images = 10;  // keep it cheap
              spec.f_max_hz = v;
            });
  EXPECT_EQ(seen, values);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].parameter, 10.0);
}

TEST_F(ExperimentHarness, FrequencySweepScalesTime) {
  ExperimentSpec base = tiny_spec();
  base.train_images = 8;
  const auto points =
      sweep_input_frequency(base, *data_, {44.0}, /*scale_t_learn=*/true);
  ASSERT_EQ(points.size(), 1u);
  // 44 Hz = 2x baseline 22 Hz -> t_learn halves to 250 ms over 8 images.
  EXPECT_DOUBLE_EQ(points[0].result.simulated_learning_ms, 8 * 250.0);
}

TEST_F(ExperimentHarness, RejectsEmptyInputs) {
  ExperimentSpec spec = tiny_spec();
  spec.train_images = 0;
  EXPECT_THROW(run_learning_experiment(spec, *data_), Error);
  EXPECT_THROW(sweep(tiny_spec(), *data_, {},
                     [](ExperimentSpec&, double) {}),
               Error);
}

}  // namespace
}  // namespace pss
