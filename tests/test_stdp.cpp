// Tests for the STDP rules: eq. 4-5 magnitudes, eq. 6-7 gates, and the
// unified updater with precision/rounding handling (the paper's core).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/synapse/parameter_registry.hpp"
#include "pss/synapse/stdp_deterministic.hpp"
#include "pss/synapse/stdp_stochastic.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

StdpMagnitudeParams paper16() {
  return StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0};
}

TEST(DeterministicStdp, Equation4AtBounds) {
  const DeterministicStdp rule(paper16());
  // At G = G_min the exponent is 0: delta = alpha_p.
  EXPECT_DOUBLE_EQ(rule.potentiation_delta(0.0), 0.01);
  // At G = G_max: alpha_p * e^-beta_p.
  EXPECT_NEAR(rule.potentiation_delta(1.0), 0.01 * std::exp(-3.0), 1e-12);
}

TEST(DeterministicStdp, Equation5AtBounds) {
  const DeterministicStdp rule(paper16());
  EXPECT_DOUBLE_EQ(rule.depression_delta(1.0), 0.005);
  EXPECT_NEAR(rule.depression_delta(0.0), 0.005 * std::exp(-3.0), 1e-12);
}

TEST(DeterministicStdp, PotentiationDeltaDecreasesWithG) {
  const DeterministicStdp rule(paper16());
  double prev = rule.potentiation_delta(0.0);
  for (double g = 0.1; g <= 1.0; g += 0.1) {
    const double d = rule.potentiation_delta(g);
    EXPECT_LT(d, prev) << "soft bound: smaller steps near G_max";
    prev = d;
  }
}

TEST(DeterministicStdp, DepressionDeltaIncreasesWithG) {
  const DeterministicStdp rule(paper16());
  double prev = rule.depression_delta(0.0);
  for (double g = 0.1; g <= 1.0; g += 0.1) {
    const double d = rule.depression_delta(g);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(DeterministicStdp, PotentiateAndDepressClamp) {
  const DeterministicStdp rule(paper16());
  EXPECT_LE(rule.potentiate(0.9999), 1.0);
  EXPECT_GE(rule.depress(0.0001), 0.0);
}

TEST(DeterministicStdp, RespectsCustomRange) {
  StdpMagnitudeParams p = paper16();
  p.g_min = 0.2;
  p.g_max = 0.6;
  const DeterministicStdp rule(p);
  EXPECT_DOUBLE_EQ(rule.potentiation_delta(0.2), p.alpha_p);
  EXPECT_DOUBLE_EQ(rule.depression_delta(0.6), p.alpha_d);
  EXPECT_GE(rule.depress(0.21), 0.2);
}

TEST(DeterministicStdp, RejectsEmptyRange) {
  StdpMagnitudeParams p = paper16();
  p.g_min = p.g_max = 0.5;
  EXPECT_THROW(DeterministicStdp{p}, Error);
}

TEST(StochasticGate, Equation6Values) {
  const StochasticGate gate(StochasticGateParams{0.9, 30.0, 0.9, 10.0});
  EXPECT_DOUBLE_EQ(gate.p_pot(0.0), 0.9);
  EXPECT_NEAR(gate.p_pot(30.0), 0.9 * std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(gate.p_pot(-5.0), 0.0) << "anti-causal pairs never potentiate";
}

TEST(StochasticGate, Equation7Values) {
  const StochasticGate gate(StochasticGateParams{0.9, 30.0, 0.9, 10.0});
  EXPECT_DOUBLE_EQ(gate.p_dep(0.0), 0.9);
  EXPECT_NEAR(gate.p_dep(-10.0), 0.9 * std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(gate.p_dep(5.0), 0.0) << "causal pairs never depress via eq.7";
}

TEST(StochasticGate, StaleDepressionRisesWithGap) {
  const StochasticGate gate(StochasticGateParams{0.9, 30.0, 0.9, 10.0, 80.0});
  EXPECT_DOUBLE_EQ(gate.p_dep_stale(0.0), 0.0);
  double prev = 0.0;
  for (double gap = 10.0; gap <= 500.0; gap += 10.0) {
    const double p = gate.p_dep_stale(gap);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_NEAR(gate.p_dep_stale(1e9), 0.9, 1e-9) << "saturates at gamma_dep";
}

TEST(StochasticGate, ProbabilitiesDecayWithAbsoluteDt) {
  // Fig. 1c: both curves peak at dt = 0 and decay with |dt|.
  const StochasticGate gate(StochasticGateParams{0.5, 20.0, 0.4, 15.0});
  EXPECT_GT(gate.p_pot(5.0), gate.p_pot(25.0));
  EXPECT_GT(gate.p_dep(-5.0), gate.p_dep(-25.0));
}

TEST(StochasticGate, RejectsInvalidParams) {
  EXPECT_THROW(StochasticGate(StochasticGateParams{1.5, 30.0, 0.9, 10.0}),
               Error);
  EXPECT_THROW(StochasticGate(StochasticGateParams{0.9, -1.0, 0.9, 10.0}),
               Error);
}

StdpUpdaterConfig det_config() {
  StdpUpdaterConfig cfg;
  cfg.kind = StdpKind::kDeterministic;
  cfg.magnitude = paper16();
  cfg.gate = StochasticGateParams{0.9, 30.0, 0.9, 10.0};
  return cfg;
}

StdpUpdaterConfig sto_config() {
  StdpUpdaterConfig cfg = det_config();
  cfg.kind = StdpKind::kStochastic;
  return cfg;
}

TEST(StdpUpdater, DeterministicPotentiatesInsideWindow) {
  const StdpUpdater u(det_config());
  const double g = 0.5;
  EXPECT_GT(u.update_at_post_spike(g, 10.0, 0.99, 0.99, 0.0), g);
  EXPECT_GT(u.update_at_post_spike(g, 20.0, 0.99, 0.99, 0.0), g);
}

TEST(StdpUpdater, DeterministicDepressesOutsideWindow) {
  const StdpUpdater u(det_config());
  const double g = 0.5;
  EXPECT_LT(u.update_at_post_spike(g, 20.1, 0.0, 0.0, 0.0), g);
  EXPECT_LT(u.update_at_post_spike(g, kInf, 0.0, 0.0, 0.0), g);
}

TEST(StdpUpdater, DeterministicIgnoresDraws) {
  const StdpUpdater u(det_config());
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(0.5, 10.0, 0.0, 0.0, 0.0),
                   u.update_at_post_spike(0.5, 10.0, 0.99, 0.99, 0.0));
}

TEST(StdpUpdater, DeterministicHasNoPreSpikePathway) {
  const StdpUpdater u(det_config());
  EXPECT_FALSE(u.wants_pre_spike_events());
  EXPECT_DOUBLE_EQ(u.update_at_pre_spike(0.5, 3.0, 0.0, 0.0), 0.5);
}

TEST(StdpUpdater, StochasticPotentiationGatedByEq6) {
  const StdpUpdater u(sto_config());
  const double g = 0.5;
  const double p = 0.9 * std::exp(-10.0 / 30.0);
  // Draw below the gate probability -> potentiate; above (and below the
  // stale-dep gate, which is small at gap 10) -> unchanged.
  EXPECT_GT(u.update_at_post_spike(g, 10.0, p - 0.01, 0.99, 0.0), g);
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(g, 10.0, p + 0.01, 0.99, 0.0), g);
}

TEST(StdpUpdater, StochasticStaleDepressionAtLargeGap) {
  const StdpUpdater u(sto_config());
  const double g = 0.5;
  // gap = inf: p_pot = 0, stale dep probability = gamma_dep.
  EXPECT_LT(u.update_at_post_spike(g, kInf, 0.0, 0.5, 0.0), g);
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(g, kInf, 0.0, 0.91, 0.0), g);
}

TEST(StdpUpdater, PreSpikeEq7ModeDepresses) {
  StdpUpdaterConfig cfg = sto_config();
  cfg.depression = DepressionMode::kPreSpikeEq7;
  const StdpUpdater u(cfg);
  EXPECT_TRUE(u.wants_pre_spike_events());
  const double g = 0.5;
  const double p5 = 0.9 * std::exp(-5.0 / 10.0);
  EXPECT_LT(u.update_at_pre_spike(g, 5.0, p5 - 0.01, 0.0), g);
  EXPECT_DOUBLE_EQ(u.update_at_pre_spike(g, 5.0, p5 + 0.01, 0.0), g);
  // In this mode there is no stale depression at post spikes.
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(g, kInf, 0.5, 0.0, 0.0), g);
}

TEST(StdpUpdater, Fp32UsesFloatDeltas) {
  const StdpUpdater u(det_config());
  const double g = 0.5;
  const DeterministicStdp rule(paper16());
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(g, 5.0, 0.0, 0.0, 0.0),
                   g + rule.potentiation_delta(g));
}

TEST(StdpUpdater, StochasticLowPrecisionUsesFullQuantum) {
  StdpUpdaterConfig cfg = sto_config();
  cfg.format = q0_2();
  const StdpUpdater u(cfg);
  // Start on-grid; a successful potentiation moves exactly one 0.25 step.
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(0.25, 0.0, 0.0, 0.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(u.update_at_post_spike(0.5, kInf, 0.99, 0.0, 0.0), 0.25);
}

TEST(StdpUpdater, DeterministicLowPrecisionTruncationKillsLearning) {
  // The Table II mechanism: float delta ~0.01 << 0.25 quantum -> truncation
  // and nearest produce zero update; stochastic rounding sometimes applies a
  // full quantum (eq. 8).
  StdpUpdaterConfig cfg = det_config();
  cfg.format = q0_2();
  cfg.rounding = RoundingMode::kTruncate;
  EXPECT_DOUBLE_EQ(StdpUpdater(cfg).update_at_post_spike(0.5, 5.0, 0, 0, 0.0),
                   0.5);
  cfg.rounding = RoundingMode::kNearest;
  EXPECT_DOUBLE_EQ(StdpUpdater(cfg).update_at_post_spike(0.5, 5.0, 0, 0, 0.0),
                   0.5);
  cfg.rounding = RoundingMode::kStochastic;
  const StdpUpdater stoch_round(cfg);
  // Potentiation delta at g=0.5 is 0.01*e^-1.5 ~ 0.00223; P_up = delta*4.
  const double p_up = 0.01 * std::exp(-1.5) * 4.0;
  EXPECT_DOUBLE_EQ(stoch_round.update_at_post_spike(0.5, 5.0, 0, 0, p_up * 0.9),
                   0.75);
  EXPECT_DOUBLE_EQ(stoch_round.update_at_post_spike(0.5, 5.0, 0, 0, p_up * 1.1),
                   0.5);
}

TEST(StdpUpdater, EffectiveGMaxRespectsFormat) {
  StdpUpdaterConfig cfg = sto_config();
  EXPECT_DOUBLE_EQ(StdpUpdater(cfg).effective_g_max(), 1.0);
  cfg.format = q0_2();
  EXPECT_DOUBLE_EQ(StdpUpdater(cfg).effective_g_max(), 0.75);
  cfg.format = q1_7();
  EXPECT_DOUBLE_EQ(StdpUpdater(cfg).effective_g_max(), 1.0)
      << "Q1.7 can represent beyond g_max; clamp is g_max";
}

TEST(StdpUpdater, NamesAreStable) {
  EXPECT_STREQ(stdp_kind_name(StdpKind::kDeterministic), "deterministic");
  EXPECT_STREQ(stdp_kind_name(StdpKind::kStochastic), "stochastic");
  EXPECT_STREQ(depression_mode_name(DepressionMode::kStaleAtPost),
               "stale-at-post");
}

// Property sweep over every Table I row x rule kind: conductance must stay
// in range and (for fixed-point rows) on the representation grid through
// long random event sequences.
class UpdaterProperty
    : public ::testing::TestWithParam<std::tuple<LearningOption, StdpKind>> {};

TEST_P(UpdaterProperty, ConductanceStaysInRangeAndOnGrid) {
  const auto [option, kind] = GetParam();
  const Table1Row& row = table1_row(option);
  StdpUpdaterConfig cfg;
  cfg.kind = kind;
  cfg.magnitude = row.magnitude.value_or(paper16());
  cfg.gate = row.gate;
  cfg.format = row.format;
  const StdpUpdater u(cfg);

  SequentialRng rng(2024);
  double g = 0.5;
  if (row.format) {
    g = Quantizer(*row.format, RoundingMode::kNearest).quantize(g);
  }
  for (int event = 0; event < 5000; ++event) {
    const double gap = rng.uniform(0.0, 400.0);
    if (rng.bernoulli(0.8)) {
      g = u.update_at_post_spike(g, gap, rng.uniform(), rng.uniform(),
                                 rng.uniform());
    } else {
      g = u.update_at_pre_spike(g, gap, rng.uniform(), rng.uniform());
    }
    ASSERT_GE(g, cfg.magnitude.g_min);
    ASSERT_LE(g, u.effective_g_max());
    if (row.format) {
      // Deltas are grid-quantized (or a full quantum), so a grid-initialized
      // conductance must stay on the grid forever.
      ASSERT_TRUE(row.format->representable(g))
          << "event " << event << ": g = " << g << " left the grid";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, UpdaterProperty,
    ::testing::Combine(::testing::Values(LearningOption::k2Bit,
                                         LearningOption::k4Bit,
                                         LearningOption::k8Bit,
                                         LearningOption::k16Bit,
                                         LearningOption::kFloat32,
                                         LearningOption::kHighFrequency),
                       ::testing::Values(StdpKind::kDeterministic,
                                         StdpKind::kStochastic)));

}  // namespace
}  // namespace pss
