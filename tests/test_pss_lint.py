#!/usr/bin/env python3
"""Pins tools/lint/pss_lint.py behaviour against tests/lint_fixtures/.

Asserts, for every rule: the seeded violations are reported at the expected
(file, rule) pairs, valid suppressions land in the report's `suppressed`
list (not `violations`), an unknown rule inside a suppression is itself a
violation, clean files stay clean, and the exit codes are exactly
0 = clean / 1 = violations / 2 = usage error. Runs as ctest `lint_fixtures`
(label `lint`); any assertion failure exits non-zero with a message.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

FAILURES = []


def check(cond, message):
    if not cond:
        FAILURES.append(message)
        print("FAIL: " + message, file=sys.stderr)


def run_lint(lint, args):
    proc = subprocess.run([sys.executable, lint] + args,
                          capture_output=True, text=True, timeout=60)
    return proc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--lint", required=True, help="path to pss_lint.py")
    ap.add_argument("--fixtures", required=True,
                    help="path to tests/lint_fixtures")
    ap.add_argument("--work", required=True, help="scratch directory")
    args = ap.parse_args()

    os.makedirs(args.work, exist_ok=True)
    report_path = os.path.join(args.work, "report.json")

    # --- full fixture scan: exit 1, every seeded violation reported --------
    proc = run_lint(args.lint,
                    ["--root", args.fixtures, "--json", report_path,
                     "--quiet"])
    check(proc.returncode == 1,
          "fixture scan should exit 1 (violations), got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(report_path) as f:
        report = json.load(f)
    check(report["schema"] == "pss.lint.v1", "unexpected report schema")
    check(report["status"] == "fail", "fixture report status should be fail")

    pairs = {(v["file"], v["rule"]) for v in report["violations"]}
    expected = {
        ("src/pss/engine/bad_rng.cpp", "nondeterministic-rng"),
        ("src/pss/engine/bad_alloc.cpp", "raw-alloc"),
        ("src/pss/engine/bad_suppress.cpp", "raw-alloc"),
        ("src/pss/engine/bad_suppress.cpp", "bad-suppression"),
        ("src/pss/backend/kernels_bad.cpp", "kernel-rng"),
        ("src/pss/backend/kernels_bad.cpp", "raw-alloc"),
        ("src/pss/synapse/unordered_iter.cpp", "unordered-iteration"),
        ("src/pss/obs/bad_perf.cpp", "raw-perf-syscall"),
        ("src/pss/obs/bad_socket.cpp", "raw-socket-syscall"),
        ("CMakeLists.txt", "fp-reassociation"),
        ("src/pss/prop/bad_seed.cpp", "prop-seed"),
        ("tests/test_prop_seeded.cpp", "prop-seed"),
    }
    for pair in expected:
        check(pair in pairs, "missing expected violation %s" % (pair,))

    # Per-rule counts on the multi-violation files.
    by_file_rule = {}
    for v in report["violations"]:
        key = (v["file"], v["rule"])
        by_file_rule[key] = by_file_rule.get(key, 0) + 1
    check(by_file_rule.get(
              ("src/pss/engine/bad_rng.cpp", "nondeterministic-rng"), 0) == 4,
          "bad_rng.cpp should yield 4 nondeterministic-rng findings, got %d"
          % by_file_rule.get(
              ("src/pss/engine/bad_rng.cpp", "nondeterministic-rng"), 0))
    check(by_file_rule.get(
              ("src/pss/backend/kernels_bad.cpp", "kernel-rng"), 0) == 2,
          "kernels_bad.cpp should yield 2 kernel-rng findings")
    check(by_file_rule.get(
              ("src/pss/synapse/unordered_iter.cpp",
               "unordered-iteration"), 0) == 2,
          "unordered_iter.cpp should yield 2 unordered-iteration findings")
    check(by_file_rule.get(
              ("src/pss/prop/bad_seed.cpp", "prop-seed"), 0) == 3,
          "bad_seed.cpp should yield 3 prop-seed findings (CounterRng, "
          "SequentialRng, std::mt19937), got %d"
          % by_file_rule.get(("src/pss/prop/bad_seed.cpp", "prop-seed"), 0))
    check(by_file_rule.get(
              ("tests/test_prop_seeded.cpp", "prop-seed"), 0) == 1,
          "test_prop_seeded.cpp should yield 1 prop-seed finding")
    check(by_file_rule.get(
              ("src/pss/obs/bad_perf.cpp", "raw-perf-syscall"), 0) == 2,
          "bad_perf.cpp should yield 2 raw-perf-syscall findings "
          "(SYS_ and __NR_ spellings)")
    check(by_file_rule.get(
              ("src/pss/obs/bad_socket.cpp", "raw-socket-syscall"), 0) == 3,
          "bad_socket.cpp should yield 3 raw-socket-syscall findings "
          "(header include, ::socket, ::listen) — the qualified member "
          "definition and wrapper-style call must stay clean")

    # Clean file: no findings at all.
    clean_hits = [v for v in report["violations"]
                  if v["file"] == "src/pss/neuron/clean.cpp"]
    check(not clean_hits,
          "clean.cpp (comments/strings only) should not fire: %s"
          % clean_hits)

    # Suppressions: recorded, not violations.
    sup_pairs = {(s["file"], s["rule"]) for s in report["suppressed"]}
    check(("src/pss/engine/suppressed_rng.cpp", "nondeterministic-rng")
          in sup_pairs, "valid suppression should be recorded as suppressed")
    check(("CMakeLists.txt", "fp-reassociation") in sup_pairs,
          "cmake suppression should be recorded as suppressed")
    check(("src/pss/prop/suppressed_seed.cpp", "prop-seed") in sup_pairs,
          "valid prop-seed suppression should be recorded as suppressed")
    check(not any(v["file"] == "src/pss/prop/suppressed_seed.cpp"
                  for v in report["violations"]),
          "suppressed_seed.cpp must not appear in violations")
    check(not any(v["file"] == "src/pss/engine/suppressed_rng.cpp"
                  for v in report["violations"]),
          "suppressed_rng.cpp must not appear in violations")

    # counts mirror violations.
    total = sum(report["counts"].values())
    check(total == len(report["violations"]),
          "counts (%d) must sum to len(violations) (%d)"
          % (total, len(report["violations"])))

    # --- rule subsetting ---------------------------------------------------
    proc = run_lint(args.lint,
                    ["--root", args.fixtures, "--rules", "kernel-rng",
                     "--json", report_path, "--quiet"])
    check(proc.returncode == 1, "kernel-rng subset should still exit 1")
    with open(report_path) as f:
        subset = json.load(f)
    check({v["rule"] for v in subset["violations"]} == {"kernel-rng"},
          "subset run must only report kernel-rng findings")

    # --- clean tree: exit 0, status pass -----------------------------------
    clean_root = os.path.join(args.work, "clean_tree")
    shutil.rmtree(clean_root, ignore_errors=True)
    os.makedirs(os.path.join(clean_root, "src", "pss", "engine"))
    with open(os.path.join(clean_root, "src", "pss", "engine", "ok.cpp"),
              "w") as f:
        f.write("double twice(double x) { return 2.0 * x; }\n")
    proc = run_lint(args.lint,
                    ["--root", clean_root, "--json", report_path])
    check(proc.returncode == 0,
          "clean tree should exit 0, got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(report_path) as f:
        check(json.load(f)["status"] == "pass",
              "clean tree report status should be pass")

    # --- real-tree kernel TUs: Philox-only, no suppressions ----------------
    # The backend kernel translation units (including the event-driven
    # kernels_sparse.cpp) must stay clean under kernel-rng without a single
    # suppression — the rule is the determinism guarantee, not a guideline.
    repo_root = os.path.dirname(os.path.abspath(args.fixtures))
    repo_root = os.path.dirname(repo_root)
    kernel_tus = ["kernels_cpu.cpp", "kernels_simd.cpp", "kernels_sparse.cpp"]
    for tu in kernel_tus:
        check(os.path.exists(
                  os.path.join(repo_root, "src", "pss", "backend", tu)),
              "expected kernel TU missing from tree: %s" % tu)
    proc = run_lint(args.lint,
                    ["--root", repo_root, "--rules", "kernel-rng",
                     "--json", report_path, "--quiet"])
    check(proc.returncode == 0,
          "repo kernel TUs must be kernel-rng clean, got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(report_path) as f:
        repo_report = json.load(f)
    check(repo_report["files_scanned"] > 0, "repo scan saw no files")
    check(not any(s["rule"] == "kernel-rng" and
                  os.path.basename(s["file"]) in kernel_tus
                  for s in repo_report["suppressed"]),
          "kernel TUs must not carry kernel-rng suppressions")

    # --- real tree: exactly one raw-perf-syscall site, in the wrapper ------
    # The hardware-counter profiler's syscall lives only in
    # src/pss/obs/perf.cpp behind an audited suppression; anywhere else the
    # rule must fire.
    proc = run_lint(args.lint,
                    ["--root", repo_root, "--rules", "raw-perf-syscall",
                     "--json", report_path, "--quiet"])
    check(proc.returncode == 0,
          "repo tree must be raw-perf-syscall clean, got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(report_path) as f:
        perf_report = json.load(f)
    perf_sup = [s for s in perf_report["suppressed"]
                if s["rule"] == "raw-perf-syscall"]
    check(len(perf_sup) == 1 and
          perf_sup[0]["file"] == "src/pss/obs/perf.cpp",
          "expected exactly one audited raw-perf-syscall suppression in "
          "src/pss/obs/perf.cpp, got %s"
          % [(s["file"], s["line"]) for s in perf_sup])

    # --- real tree: socket syscalls confined to the serve/net wrapper ------
    # Every raw socket syscall (and socket-header include) lives in
    # src/pss/serve/net.cpp behind audited suppressions; the rest of the
    # tree — including the metrics exporter and the serve daemon itself —
    # must go through pss::serve::net.
    proc = run_lint(args.lint,
                    ["--root", repo_root, "--rules", "raw-socket-syscall",
                     "--json", report_path, "--quiet"])
    check(proc.returncode == 0,
          "repo tree must be raw-socket-syscall clean, got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(report_path) as f:
        sock_report = json.load(f)
    sock_sup = [s for s in sock_report["suppressed"]
                if s["rule"] == "raw-socket-syscall"]
    check(len(sock_sup) > 0 and
          all(s["file"] == "src/pss/serve/net.cpp" for s in sock_sup),
          "all raw-socket-syscall suppressions must live in "
          "src/pss/serve/net.cpp, got %s"
          % sorted({s["file"] for s in sock_sup}))

    # --- real tree: property code never seeds its own RNGs -----------------
    # The harness and every tests/test_prop_*.cpp property derive all draws
    # from the (seed, case) Philox stream — no literal-seeded RNGs, no
    # <random> engines, and no suppressions: the printed PSS_PROP_SEED
    # repro line must fully determine a failing case.
    proc = run_lint(args.lint,
                    ["--root", repo_root, "--rules", "prop-seed",
                     "--json", report_path, "--quiet"])
    check(proc.returncode == 0,
          "repo prop code must be prop-seed clean, got %d: %s"
          % (proc.returncode, proc.stderr))
    with open(report_path) as f:
        prop_report = json.load(f)
    check(not any(s["rule"] == "prop-seed" for s in prop_report["suppressed"]),
          "prop code must not need prop-seed suppressions, got %s"
          % [(s["file"], s["line"]) for s in prop_report["suppressed"]
             if s["rule"] == "prop-seed"])

    # --- usage errors: exit 2 ----------------------------------------------
    proc = run_lint(args.lint, ["--root", args.fixtures,
                                "--rules", "no-such-rule"])
    check(proc.returncode == 2, "unknown --rules value should exit 2")
    proc = run_lint(args.lint,
                    ["--root", os.path.join(args.work, "does-not-exist")])
    check(proc.returncode == 2, "missing --root should exit 2")

    if FAILURES:
        print("%d check(s) failed" % len(FAILURES), file=sys.stderr)
        return 1
    print("test_pss_lint: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
