// Tests for the GPU-substitute execution engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/engine/device_vector.hpp"
#include "pss/engine/launch.hpp"
#include "pss/engine/thread_pool.hpp"

namespace pss {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, HandlesRangeSmallerThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyLaunches) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      total += static_cast<long>(e - b);
    });
  }
  EXPECT_EQ(total.load(), 6400);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(Engine, LaunchVisitsEachThreadIndex) {
  Engine engine(4);
  std::vector<std::atomic<int>> hits(257);
  engine.launch(257, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Engine, LaunchSumMatchesSerial) {
  Engine engine(4);
  const double parallel =
      engine.launch_sum(1000, [](std::size_t i) { return i * 0.5; });
  double serial = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) serial += i * 0.5;
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(Engine, LaunchSumEmptyIsZero) {
  Engine engine(2);
  EXPECT_DOUBLE_EQ(engine.launch_sum(0, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(Engine, ResultsIndependentOfWorkerCount) {
  // The reproducibility contract: counter-based draws + data-parallel
  // kernels => identical results for any worker count.
  auto run = [](std::size_t workers) {
    Engine engine(workers);
    CounterRng rng(77, 3);
    device_vector<double> out(512);
    auto span = out.span();
    engine.launch(512, [&](std::size_t i) { span[i] = rng.uniform(i); });
    return out.download();
  };
  const auto one = run(1);
  const auto four = run(4);
  const auto seven = run(7);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, seven);
}

TEST(DeviceVector, UploadDownloadRoundTrip) {
  device_vector<int> v(4);
  const std::vector<int> host = {1, 2, 3, 4};
  v.upload(host);
  EXPECT_EQ(v.download(), host);
}

TEST(DeviceVector, UploadRejectsSizeMismatch) {
  device_vector<int> v(4);
  const std::vector<int> wrong = {1, 2};
  EXPECT_THROW(v.upload(wrong), Error);
}

TEST(DeviceVector, FillSetsEveryElement) {
  device_vector<double> v(10, 1.0);
  v.fill(3.5);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(v[i], 3.5);
}

TEST(DeviceVector, ConstructFromHostVector) {
  device_vector<int> v(std::vector<int>{5, 6, 7});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 7);
}

TEST(DefaultEngine, IsSingletonAndUsable) {
  Engine& a = default_engine();
  Engine& b = default_engine();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.launch(10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(DefaultEngine, ConfigureAfterUseThrows) {
  default_engine();  // force creation
  EXPECT_THROW(configure_default_engine(2), Error);
}

}  // namespace
}  // namespace pss
