// Tests for the GPU-substitute execution engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/engine/device_vector.hpp"
#include "pss/engine/launch.hpp"
#include "pss/engine/thread_pool.hpp"

namespace pss {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, HandlesRangeSmallerThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyLaunches) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      total += static_cast<long>(e - b);
    });
  }
  EXPECT_EQ(total.load(), 6400);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, RawRangeFnForm) {
  // The non-owning dispatch primitive the template adapters build on.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  const ThreadPool::RangeFn fn = [](void* ctx, std::size_t b, std::size_t e) {
    auto* h = static_cast<std::vector<std::atomic<int>>*>(ctx);
    for (std::size_t i = b; i < e; ++i) (*h)[i]++;
  };
  pool.parallel_for(100, fn, &hits);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ShardsPartitionRangeWithStableIds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  std::vector<std::atomic<int>> shard_of(1000);
  pool.parallel_shards(1000, [&](std::size_t shard, std::size_t b,
                                 std::size_t e) {
    EXPECT_LT(shard, pool.worker_count());
    for (std::size_t i = b; i < e; ++i) {
      hits[i]++;
      shard_of[i] = static_cast<int>(shard);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Contiguous ranges: shard ids must be non-decreasing over the index space.
  for (std::size_t i = 1; i < 1000; ++i) {
    EXPECT_LE(shard_of[i - 1].load(), shard_of[i].load());
  }
}

TEST(Engine, LaunchVisitsEachThreadIndex) {
  Engine engine(4);
  std::vector<std::atomic<int>> hits(257);
  engine.launch(257, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Engine, LaunchSumMatchesSerial) {
  Engine engine(4);
  const double parallel =
      engine.launch_sum(1000,
                        [](std::size_t i) { return static_cast<double>(i) * 0.5; });
  double serial = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) {
    serial += static_cast<double>(i) * 0.5;
  }
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(Engine, LaunchSumEmptyIsZero) {
  Engine engine(2);
  EXPECT_DOUBLE_EQ(engine.launch_sum(0, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(Engine, ResultsIndependentOfWorkerCount) {
  // The reproducibility contract: counter-based draws + data-parallel
  // kernels => identical results for any worker count.
  auto run = [](std::size_t workers) {
    Engine engine(workers);
    CounterRng rng(77, 3);
    device_vector<double> out(512);
    auto span = out.span();
    engine.launch(512, [&](std::size_t i) { span[i] = rng.uniform(i); });
    return out.download();
  };
  const auto one = run(1);
  const auto four = run(4);
  const auto seven = run(7);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, seven);
}

TEST(Engine, GrainCutoffRunsSmallLaunchesInline) {
  Engine engine(4);
  EXPECT_EQ(engine.grain(), Engine::kDefaultGrain);
  std::atomic<int> n{0};
  engine.launch(100, [&](std::size_t) { n++; });  // 100 <= grain -> inline
  EXPECT_EQ(n.load(), 100);
  EXPECT_EQ(engine.launch_count(), 1u);
  EXPECT_EQ(engine.dispatch_count(), 0u);

  engine.launch(Engine::kDefaultGrain + 1, [](std::size_t) {});
  EXPECT_EQ(engine.launch_count(), 2u);
  EXPECT_EQ(engine.dispatch_count(), 1u);

  engine.set_grain(0);  // force dispatch regardless of size
  engine.launch(100, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 200);
  EXPECT_EQ(engine.dispatch_count(), 2u);
}

TEST(Engine, SerialEngineNeverDispatches) {
  Engine engine(1);
  engine.set_grain(0);
  std::atomic<int> n{0};
  engine.launch(5000, [&](std::size_t) { n++; });
  engine.launch_sum(5000, [](std::size_t) { return 1.0; });
  EXPECT_EQ(n.load(), 5000);
  EXPECT_EQ(engine.launch_count(), 2u);
  EXPECT_EQ(engine.dispatch_count(), 0u);
}

TEST(Engine, LaunchSumIdenticalInlineOrDispatched) {
  // launch_sum combines per-shard partials in shard order, so for a fixed
  // worker count the dispatched result is deterministic; and because every
  // kernel value is exactly representable here, it equals the inline sum.
  Engine inline_engine(4);  // n <= grain -> serial accumulation
  Engine forced(4);
  forced.set_grain(0);  // always through the pool
  auto kernel = [](std::size_t i) { return static_cast<double>(i); };
  const double a = inline_engine.launch_sum(2000, kernel);
  const double b = forced.launch_sum(2000, kernel);
  const double c = forced.launch_sum(2000, kernel);
  EXPECT_DOUBLE_EQ(a, 2000.0 * 1999.0 / 2.0);
  EXPECT_DOUBLE_EQ(b, c);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(BatchRunner, VisitsEveryIndexOnceWithValidWorkerIds) {
  BatchRunner runner(4);
  EXPECT_EQ(runner.worker_count(), 4u);
  std::vector<std::atomic<int>> hits(333);
  runner.run(333, [&](std::size_t worker, std::size_t i) {
    EXPECT_LT(worker, runner.worker_count());
    hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BatchRunner, WorkerEnginesAreSerialAndDistinct) {
  BatchRunner runner(3);
  for (std::size_t w = 0; w < runner.worker_count(); ++w) {
    EXPECT_EQ(runner.worker_engine(w).worker_count(), 1u);
    for (std::size_t v = w + 1; v < runner.worker_count(); ++v) {
      EXPECT_NE(&runner.worker_engine(w), &runner.worker_engine(v));
    }
  }
  EXPECT_THROW(runner.worker_engine(3), Error);
}

TEST(BatchRunner, PerWorkerBuildsLazilyOncePerWorker) {
  BatchRunner runner(4);
  PerWorker<int> state(runner.worker_count());
  std::atomic<int> builds{0};
  std::atomic<long> total{0};
  runner.run(100, [&](std::size_t w, std::size_t i) {
    int& slot = state.get(w, [&] {
      builds++;
      return 1000 * static_cast<int>(w);
    });
    total += slot + static_cast<long>(i);
  });
  // At most one construction per worker, and only for workers that ran.
  EXPECT_LE(builds.load(), 4);
  EXPECT_GE(builds.load(), 1);
  std::size_t used = 0;
  for (std::size_t w = 0; w < state.size(); ++w) {
    if (state.slot(w)) ++used;
  }
  EXPECT_EQ(static_cast<int>(used), builds.load());
}

TEST(DeviceVector, UploadDownloadRoundTrip) {
  device_vector<int> v(4);
  const std::vector<int> host = {1, 2, 3, 4};
  v.upload(host);
  EXPECT_EQ(v.download(), host);
}

TEST(DeviceVector, UploadRejectsSizeMismatch) {
  device_vector<int> v(4);
  const std::vector<int> wrong = {1, 2};
  EXPECT_THROW(v.upload(wrong), Error);
}

TEST(DeviceVector, FillSetsEveryElement) {
  device_vector<double> v(10, 1.0);
  v.fill(3.5);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(v[i], 3.5);
}

TEST(DeviceVector, ConstructFromHostVector) {
  device_vector<int> v(std::vector<int>{5, 6, 7});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 7);
}

TEST(DefaultEngine, IsSingletonAndUsable) {
  Engine& a = default_engine();
  Engine& b = default_engine();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.launch(10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(DefaultEngine, ConfigureAfterUseThrows) {
  default_engine();  // force creation
  EXPECT_THROW(configure_default_engine(2), Error);
}

}  // namespace
}  // namespace pss
