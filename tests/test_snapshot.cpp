// Tests for trained-model serialization (pss/io/snapshot.hpp): capture /
// save / load / restore round-trips and format robustness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/learning/classifier.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"

namespace pss {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

WtaConfig tiny_config() {
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 12);
  cfg.input_channels = 64;
  cfg.seed = 3;
  return cfg;
}

TEST(Snapshot, CaptureReflectsNetworkState) {
  WtaNetwork net(tiny_config());
  const NetworkSnapshot snap = NetworkSnapshot::capture(net);
  EXPECT_EQ(snap.neuron_count, 12u);
  EXPECT_EQ(snap.input_channels, 64u);
  EXPECT_EQ(snap.conductance.size(), 12u * 64u);
  EXPECT_EQ(snap.conductance, net.conductance().to_vector());
  EXPECT_EQ(snap.theta.size(), 12u);
  EXPECT_TRUE(snap.neuron_labels.empty());
}

TEST(Snapshot, CaptureWithLabels) {
  WtaNetwork net(tiny_config());
  const std::vector<int> labels(12, 3);
  const NetworkSnapshot snap = NetworkSnapshot::capture(net, &labels);
  ASSERT_EQ(snap.neuron_labels.size(), 12u);
  EXPECT_EQ(snap.neuron_labels[0], 3);
  const std::vector<int> wrong(5, 0);
  EXPECT_THROW(NetworkSnapshot::capture(net, &wrong), Error);
}

TEST(Snapshot, FileRoundTripIsExact) {
  WtaNetwork net(tiny_config());
  std::vector<double> rates(64, 20.0);
  net.present(rates, 300.0, true);  // learn something non-trivial
  const std::vector<int> labels = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, -1, 0};
  const NetworkSnapshot snap = NetworkSnapshot::capture(net, &labels);

  const std::string path = temp_path("pss_snap.bin");
  save_snapshot(path, snap);
  const NetworkSnapshot back = load_snapshot(path);
  EXPECT_EQ(back.neuron_count, snap.neuron_count);
  EXPECT_EQ(back.input_channels, snap.input_channels);
  EXPECT_EQ(back.conductance, snap.conductance);
  EXPECT_EQ(back.theta, snap.theta);
  EXPECT_EQ(back.neuron_labels, snap.neuron_labels);
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreTransfersLearnedState) {
  WtaNetwork trained(tiny_config());
  std::vector<double> rates(64, 1.0);
  for (int c = 0; c < 16; ++c) rates[c] = 45.0;
  for (int i = 0; i < 6; ++i) trained.present(rates, 300.0, true);
  const NetworkSnapshot snap = NetworkSnapshot::capture(trained);

  WtaConfig cfg = tiny_config();
  cfg.seed = 999;  // different init
  WtaNetwork fresh(cfg);
  ASSERT_NE(fresh.conductance().to_vector(), trained.conductance().to_vector());
  snap.restore(fresh);
  EXPECT_EQ(fresh.conductance().to_vector(),
            trained.conductance().to_vector());
  for (std::size_t j = 0; j < 12; ++j) {
    EXPECT_DOUBLE_EQ(fresh.theta()[j], trained.theta()[j]);
  }
}

TEST(Snapshot, RestoredNetworkClassifiesLikeOriginal) {
  set_log_level(LogLevel::kWarn);
  const LabeledDataset data =
      make_synthetic_digits({.train_count = 60, .test_count = 60, .seed = 4});
  WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic, 30);
  cfg.seed = 11;
  WtaNetwork trained(cfg);
  UnsupervisedTrainer trainer(trained, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 300.0});
  trainer.train(data.train);
  const PixelFrequencyMap map(1.0, 22.0);
  const LabelingResult labels =
      label_neurons(trained, data.test.head(30), map, 200.0);

  const NetworkSnapshot snap =
      NetworkSnapshot::capture(trained, &labels.neuron_labels);
  const std::string path = temp_path("pss_snap_cls.bin");
  save_snapshot(path, snap);

  // Deploy: fresh network, restore, classify — predictions must match the
  // original network's (identical state, identical counter-based streams
  // are NOT guaranteed because the clock differs, so compare via accuracy
  // on a fixed set instead of per-image equality).
  WtaConfig fresh_cfg = cfg;
  fresh_cfg.seed = 222;
  WtaNetwork deployed(fresh_cfg);
  const NetworkSnapshot loaded = load_snapshot(path);
  loaded.restore(deployed);
  std::vector<int> loaded_labels(loaded.neuron_labels.begin(),
                                 loaded.neuron_labels.end());

  SnnClassifier a(trained, labels.neuron_labels, labels.class_count, map,
                  200.0);
  SnnClassifier b(deployed, loaded_labels, labels.class_count, map, 200.0);
  const Dataset eval = data.test.slice(30, 60);
  const double acc_a = a.evaluate(eval).accuracy;
  const double acc_b = b.evaluate(eval).accuracy;
  EXPECT_NEAR(acc_a, acc_b, 0.25)
      << "restored network must perform like the original";
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRejectsGeometryMismatch) {
  WtaNetwork net(tiny_config());
  NetworkSnapshot snap = NetworkSnapshot::capture(net);
  snap.neuron_count = 13;
  EXPECT_THROW(snap.restore(net), Error);
}

TEST(Snapshot, LoadRejectsCorruptFiles) {
  const std::string path = temp_path("pss_snap_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a snapshot at all";
  }
  EXPECT_THROW(load_snapshot(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_snapshot("/nonexistent/snap.bin"), Error);
}

TEST(Snapshot, SaveRejectsEmptySnapshot) {
  NetworkSnapshot empty;
  EXPECT_THROW(save_snapshot(temp_path("pss_empty.bin"), empty), Error);
}

TEST(Snapshot, TruncatedFileFailsCleanly) {
  WtaNetwork net(tiny_config());
  const NetworkSnapshot snap = NetworkSnapshot::capture(net);
  const std::string path = temp_path("pss_snap_trunc.bin");
  save_snapshot(path, snap);
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_snapshot(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pss
