// Randomized cross-backend differential runner (ISSUE consumer 2): identical
// generated workloads driven through every registered CPU backend
// (cpu / cpu_simd / cpu_sparse) and across worker counts, asserting bitwise
// equality where the backend contract promises it — conv_accumulate,
// pool_forward, stdp_row, current_accumulate, inhibit_scan, regular_encode —
// plus the documented ULP bound for the reassociated cpu_simd fused step and
// network-level worker-count invariance per backend.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/prop/check.hpp"
#include "pss/prop/generators.hpp"

namespace pss {
namespace {

using prop::CheckResult;
using prop::Source;

const char* const kBackends[] = {"cpu", "cpu_simd", "cpu_sparse"};
const std::size_t kWorkerGrid[] = {1, 2, 3};

prop::CheckOptions options_with(std::uint32_t cases) {
  prop::CheckOptions options;
  options.cases = cases;
  return options;
}

void assert_bitwise(const std::vector<double>& reference,
                    const std::vector<double>& candidate, const char* what) {
  PSS_PROP_ASSERT(reference.size() == candidate.size(),
                  std::string(what) + ": size mismatch");
  PSS_PROP_ASSERT(std::memcmp(reference.data(), candidate.data(),
                              reference.size() * sizeof(double)) == 0,
                  std::string(what) + ": backends diverged bitwise");
}

/// Ascending random subset of [0, units), possibly empty.
std::vector<ChannelIndex> gen_active(Source& s, std::size_t units,
                                     double density) {
  std::vector<ChannelIndex> active;
  for (std::size_t u = 0; u < units; ++u) {
    if (s.boolean(density)) active.push_back(static_cast<ChannelIndex>(u));
  }
  return active;
}

// ---------------------------------------------------------------------------
// conv_accumulate: fixed tap-accumulation association on every backend —
// bitwise across the full backend × worker grid, with decay and stride.

TEST(PropDifferential, ConvAccumulateIsBitwiseAcrossBackendsAndWorkers) {
  const CheckResult r = prop::check(
      "diff_conv_accumulate",
      [](Source& s) {
        const std::size_t kernel = s.range(2, 4);
        const std::size_t stride = s.range(1, 2);
        const std::size_t in_h = kernel + s.bits(8);
        const std::size_t in_w = kernel + s.bits(8);
        const std::size_t in_channels = s.range(1, 2);
        const std::size_t filters = s.range(1, 4);
        const std::size_t out_h = (in_h - kernel) / stride + 1;
        const std::size_t out_w = (in_w - kernel) / stride + 1;
        std::vector<double> taps(filters * in_channels * kernel * kernel);
        for (double& w : taps) w = s.real(-1.5, 1.5);
        const std::vector<ChannelIndex> active =
            gen_active(s, in_channels * in_h * in_w, 0.35);
        const double amplitude = s.real(0.5, 4.0);
        const double decay = s.boolean(0.5) ? s.real(0.1, 0.95) : 0.0;
        std::vector<double> initial(filters * out_h * out_w);
        for (double& i : initial) i = s.real(-2.0, 2.0);

        std::vector<double> reference;
        for (const char* name : kBackends) {
          for (std::size_t workers : kWorkerGrid) {
            Engine engine(workers);
            auto backend = make_backend(name, &engine);
            std::vector<double> currents = initial;
            ConvAccumulateArgs args;
            args.filters = taps;
            args.filter_count = filters;
            args.in_channels = in_channels;
            args.kernel = kernel;
            args.stride = stride;
            args.in_width = in_w;
            args.in_height = in_h;
            args.out_width = out_w;
            args.out_height = out_h;
            args.active_pre = active;
            args.amplitude = amplitude;
            args.decay_factor = decay;
            args.currents = currents;
            backend->kernels().conv_accumulate(engine, args);
            if (reference.empty()) {
              reference = currents;
            } else {
              assert_bitwise(reference, currents, "conv_accumulate");
            }
          }
        }
      },
      options_with(40));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// pool_forward: pure flag/integer work — bit-identical pooled planes and
// fired-counts everywhere, including clipped edge blocks.

TEST(PropDifferential, PoolForwardIsBitwiseAcrossBackendsAndWorkers) {
  const CheckResult r = prop::check(
      "diff_pool_forward",
      [](Source& s) {
        const std::size_t window = s.range(2, 3);
        const std::size_t in_h = s.range(2, 11);  // often not window-aligned
        const std::size_t in_w = s.range(2, 11);
        const std::size_t channels = s.range(1, 3);
        const std::size_t out_h = (in_h + window - 1) / window;
        const std::size_t out_w = (in_w + window - 1) / window;
        std::vector<std::uint8_t> spiked(channels * in_h * in_w);
        for (auto& f : spiked) f = s.boolean(0.3) ? 1 : 0;
        std::vector<std::uint32_t> initial_counts(channels * out_h * out_w);
        for (auto& c : initial_counts) c = static_cast<uint32_t>(s.bits(9));

        std::vector<std::uint8_t> ref_pooled;
        std::vector<std::uint32_t> ref_counts;
        for (const char* name : kBackends) {
          for (std::size_t workers : kWorkerGrid) {
            Engine engine(workers);
            auto backend = make_backend(name, &engine);
            std::vector<std::uint8_t> pooled(channels * out_h * out_w);
            std::vector<std::uint32_t> counts = initial_counts;
            PoolForwardArgs args;
            args.spiked = spiked;
            args.channels = channels;
            args.in_width = in_w;
            args.in_height = in_h;
            args.window = window;
            args.out_width = out_w;
            args.out_height = out_h;
            args.pooled = pooled;
            args.pooled_counts = counts;
            backend->kernels().pool_forward(engine, args);
            if (ref_pooled.empty() && ref_counts.empty()) {
              ref_pooled = pooled;
              ref_counts = counts;
            } else {
              PSS_PROP_ASSERT(pooled == ref_pooled,
                              "pool_forward flags diverged");
              PSS_PROP_ASSERT(counts == ref_counts,
                              "pool_forward counts diverged");
            }
          }
        }
      },
      options_with(40));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// stdp_row: counter-indexed draws make the row update schedule-independent —
// bitwise across backends (the SIMD variant consumes identical Philox draws)
// and worker counts, for generated rules/precisions/roundings.

TEST(PropDifferential, StdpRowIsBitwiseAcrossBackendsAndWorkers) {
  const CheckResult r = prop::check(
      "diff_stdp_row",
      [](Source& s) {
        const StdpUpdaterConfig config = prop::gen_stdp_config(s);
        const StdpUpdater updater(config);
        const std::size_t channels = s.range(4, 100);
        const double t_post = s.real(1.0, 60.0);
        std::vector<double> row(channels);
        for (double& g : row) {
          g = s.real(config.magnitude.g_min, updater.effective_g_max());
        }
        const std::vector<TimeMs> last_pre =
            prop::gen_pre_spike_times(s, channels, t_post,
                                      config.det_window_ms);
        const CounterRng rng(s.bits(0xffffffffull), s.bits(0xffff));
        const std::uint64_t counter_base = s.bits(1u << 20);

        std::vector<double> reference;
        for (const char* name : kBackends) {
          for (std::size_t workers : kWorkerGrid) {
            Engine engine(workers);
            auto backend = make_backend(name, &engine);
            std::vector<double> updated = row;
            StdpRowArgs args;
            args.updater = &updater;
            args.row = updated;
            args.last_pre_spike = last_pre;
            args.t_post = t_post;
            args.rng = &rng;
            args.counter_base = counter_base;
            backend->kernels().stdp_row(engine, args);
            if (reference.empty()) {
              reference = updated;
            } else {
              assert_bitwise(reference, updated, "stdp_row");
            }
          }
        }
      },
      options_with(60));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// current_accumulate + inhibit_scan: the unfused eq. 3 gather and the WTA
// reflex — bitwise everywhere.

TEST(PropDifferential, CurrentAccumulateAndInhibitScanAreBitwise) {
  const CheckResult r = prop::check(
      "diff_accumulate_inhibit",
      [](Source& s) {
        const std::size_t neurons = s.range(2, 40);
        const std::size_t channels = s.range(4, 60);
        std::vector<double> conductance(neurons * channels);
        for (double& g : conductance) g = s.real(0.0, 1.0);
        const std::vector<ChannelIndex> active = gen_active(s, channels, 0.4);
        const double amplitude = s.real(0.5, 4.0);
        std::vector<double> initial(neurons);
        for (double& i : initial) i = s.real(0.0, 3.0);
        std::vector<TimeMs> inhibited_initial(neurons);
        for (TimeMs& t : inhibited_initial) t = s.real(-5.0, 30.0);
        const NeuronIndex winner =
            static_cast<NeuronIndex>(s.bits(neurons - 1));
        const TimeMs until = s.real(0.0, 50.0);

        std::vector<double> ref_currents;
        std::vector<TimeMs> ref_inhibited;
        for (const char* name : kBackends) {
          for (std::size_t workers : kWorkerGrid) {
            Engine engine(workers);
            auto backend = make_backend(name, &engine);
            std::vector<double> currents = initial;
            CurrentAccumulateArgs acc;
            acc.conductance = conductance;
            acc.pre_count = channels;
            acc.active_pre = active;
            acc.amplitude = amplitude;
            acc.currents = currents;
            backend->kernels().current_accumulate(engine, acc);

            std::vector<TimeMs> inhibited = inhibited_initial;
            InhibitScanArgs scan;
            scan.inhibited_until = inhibited;
            scan.winner = winner;
            scan.until = until;
            backend->kernels().inhibit_scan(engine, scan);

            if (ref_currents.empty()) {
              ref_currents = currents;
              ref_inhibited = inhibited;
            } else {
              assert_bitwise(ref_currents, currents, "current_accumulate");
              assert_bitwise(ref_inhibited, inhibited, "inhibit_scan");
            }
          }
        }
      },
      options_with(50));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// regular_encode: phase arithmetic over all channels — identical active
// lists on every backend and worker count, step by step.

TEST(PropDifferential, RegularEncodeEmitsIdenticalActiveLists) {
  const CheckResult r = prop::check(
      "diff_regular_encode",
      [](Source& s) {
        const std::size_t channels = s.range(1, 40);
        const std::vector<double> rates = prop::gen_rates(s, channels, 800.0);
        std::vector<double> phase(channels);
        for (double& p : phase) p = s.unit() * 0.999;
        const TimeMs dt = s.choose({0.5, 1.0});
        const StepIndex steps = static_cast<StepIndex>(s.range(1, 40));

        std::vector<std::vector<ChannelIndex>> reference;
        for (const char* name : kBackends) {
          for (std::size_t workers : kWorkerGrid) {
            Engine engine(workers);
            auto backend = make_backend(name, &engine);
            std::vector<std::vector<ChannelIndex>> emitted;
            for (StepIndex step = 0; step < steps; ++step) {
              std::vector<ChannelIndex> active;
              RegularEncodeArgs args;
              args.rates_hz = rates;
              args.phase = phase;
              args.step = step;
              args.dt = dt;
              args.active = &active;
              backend->kernels().regular_encode(engine, args);
              emitted.push_back(active);
            }
            if (reference.empty()) {
              reference = emitted;
            } else {
              PSS_PROP_ASSERT(emitted == reference,
                              "regular_encode active lists diverged");
            }
          }
        }
      },
      options_with(40));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// Fused LIF step: cpu_simd reassociates the row gather into four
// accumulators — equality only up to the documented ULP bound, on generated
// state (mirrors test_backend's fixed-rig bound, here over random rigs).

std::int64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return ia > ib ? ia - ib : ib - ia;
}

TEST(PropDifferential, SimdFusedStepStaysWithinUlpBound) {
  constexpr std::int64_t kMaxUlp = 16;
  const CheckResult r = prop::check(
      "diff_fused_step_ulp",
      [](Source& s) {
        const std::size_t neurons = s.range(2, 60);
        const std::size_t channels = s.range(8, 200);
        const std::vector<ChannelIndex> active = gen_active(s, channels, 0.3);
        const double amplitude = s.real(1.0, 4.0);
        const double decay = s.real(0.0, 0.95);
        const TimeMs now = s.real(0.5, 20.0);

        struct Rig {
          std::unique_ptr<Engine> engine;
          std::unique_ptr<Backend> backend;
          std::unique_ptr<StatePool> pool;
        };
        auto build = [&](const char* name) {
          Rig rig;
          rig.engine = std::make_unique<Engine>(3);
          rig.backend = make_backend(name, rig.engine.get());
          rig.pool = std::make_unique<StatePool>(
              rig.backend.get(), StatePool::Geometry{neurons, channels});
          rig.pool->set_g_bounds(0.0, 1.0);
          return rig;
        };
        Rig a = build("cpu");
        Rig b = build("cpu_simd");
        // Identical generated state on both rigs.
        for (std::size_t sy = 0; sy < neurons * channels; ++sy) {
          const double g = s.real(0.0, 1.0);
          a.pool->g()[sy] = g;
          b.pool->g()[sy] = g;
        }
        for (std::size_t i = 0; i < neurons; ++i) {
          const double v = s.real(-80.0, -55.0);
          const double current = s.real(0.0, 4.0);
          const TimeMs inhibited = s.boolean(0.2) ? now + 5.0 : -1.0;
          for (Rig* rig : {&a, &b}) {
            rig->pool->membrane()[i] = v;
            rig->pool->currents()[i] = current;
            rig->pool->last_spike()[i] = kNeverSpiked;
            rig->pool->inhibited_until()[i] = inhibited;
          }
        }
        for (Rig* rig : {&a, &b}) {
          LifFusedStepArgs args;
          args.params = paper_lif_parameters();
          args.step.state = NeuronStateView{
              rig->pool->membrane(), rig->pool->recovery(),
              rig->pool->last_spike(), rig->pool->inhibited_until(),
              rig->pool->spiked()};
          args.step.currents = rig->pool->currents();
          args.step.decay_factor = decay;
          args.step.conductance = std::as_const(*rig->pool).g();
          args.step.pre_count = channels;
          args.step.active_pre = active;
          args.step.amplitude = amplitude;
          args.step.now = now;
          args.step.dt = 0.5;
          rig->backend->kernels().lif_step_fused(*rig->engine, args);
        }
        for (std::size_t i = 0; i < neurons; ++i) {
          PSS_PROP_ASSERT(
              ulp_distance(a.pool->currents()[i], b.pool->currents()[i]) <=
                  kMaxUlp,
              "fused-step current outside the documented ULP bound");
          PSS_PROP_ASSERT(
              ulp_distance(a.pool->membrane()[i], b.pool->membrane()[i]) <=
                  kMaxUlp,
              "fused-step membrane outside the documented ULP bound");
        }
      },
      options_with(30));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// Network level: per backend, a full generated presentation is worker-count
// invariant — same spike counts, same conductances, bit for bit.

TEST(PropDifferential, NetworkPresentationIsWorkerCountInvariant) {
  const CheckResult r = prop::check(
      "diff_network_worker_invariance",
      [](Source& s) {
        const std::string backend =
            std::string(s.choose({"cpu", "cpu_simd", "cpu_sparse"}));
        const WtaConfig config = prop::gen_wta_config(s, backend);
        const std::vector<double> rates =
            prop::gen_rates(s, config.input_channels, 400.0);

        std::vector<double> ref_g;
        std::vector<std::uint32_t> ref_counts;
        for (std::size_t workers : kWorkerGrid) {
          Engine engine(workers);
          WtaNetwork network(config, &engine);
          const PresentationResult result =
              network.present(rates, 60.0, /*learn=*/true);
          const auto values = network.conductance().values();
          const std::vector<double> g(values.begin(), values.end());
          if (ref_g.empty()) {
            ref_g = g;
            ref_counts = result.spike_counts;
          } else {
            PSS_PROP_ASSERT(result.spike_counts == ref_counts,
                            "spike counts changed with the worker count");
            assert_bitwise(ref_g, g, "post-learning conductances");
          }
        }
      },
      options_with(12));
  EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace pss
