// Tests for the canvas, synthetic dataset generators, dataset containers,
// and the IDX/PGM file formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "pss/common/error.hpp"
#include "pss/data/dataset.hpp"
#include "pss/data/idx.hpp"
#include "pss/data/image.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/data/synthetic_fashion.hpp"
#include "pss/io/pgm.hpp"
#include "pss/stats/summary.hpp"

namespace pss {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Canvas, StampDepositsInkAtCentre) {
  Canvas c;
  c.stamp(0.5, 0.5, 0.1);
  const Image img = c.render();
  EXPECT_GT(img.at(14, 14), 200);
  EXPECT_EQ(img.at(0, 0), 0);
}

TEST(Canvas, LineCoversEndpoints) {
  Canvas c;
  c.line(0.2, 0.5, 0.8, 0.5, 0.05);
  const Image img = c.render();
  EXPECT_GT(img.at(6, 14), 100);
  EXPECT_GT(img.at(22, 14), 100);
  EXPECT_EQ(img.at(14, 3), 0) << "off-stroke pixels stay dark";
}

TEST(Canvas, FillHitsPredicateRegionOnly) {
  Canvas c;
  c.fill([](double x, double y) { return x < 0.5 && y < 0.5; });
  const Image img = c.render();
  EXPECT_GT(img.at(5, 5), 200);
  EXPECT_EQ(img.at(20, 20), 0);
}

TEST(Canvas, ModulateDarkensRegion) {
  Canvas c;
  c.fill([](double, double) { return true; });
  c.modulate([](double x, double) { return x < 0.5; }, 0.3);
  const Image img = c.render();
  EXPECT_LT(img.at(5, 14), img.at(20, 14));
}

TEST(Canvas, RenderSaturatesAndClamps) {
  Canvas c;
  c.stamp(0.5, 0.5, 0.2, 100.0);  // massive ink
  const Image img = c.render(255.0, 1.0);
  EXPECT_EQ(img.at(14, 14), 255);
}

TEST(Canvas, NoiseNeedsRng) {
  Canvas c;
  SequentialRng rng(1);
  const Image img = c.render(255.0, 1.0, 0.1, &rng);
  // Pure noise on an empty canvas: some pixels should be non-zero.
  int lit = 0;
  for (auto p : img.pixels) {
    if (p > 0) ++lit;
  }
  EXPECT_GT(lit, 50);
}

TEST(Jitter, IdentityLeavesPointsFixed) {
  const Jitter identity;
  double x = 0.3;
  double y = 0.7;
  identity.apply(x, y);
  EXPECT_NEAR(x, 0.3, 1e-12);
  EXPECT_NEAR(y, 0.7, 1e-12);
}

TEST(Jitter, TranslationShiftsPoints) {
  Jitter j;
  j.dx = 0.1;
  j.dy = -0.05;
  double x = 0.5;
  double y = 0.5;
  j.apply(x, y);
  EXPECT_NEAR(x, 0.6, 1e-12);
  EXPECT_NEAR(y, 0.45, 1e-12);
}

TEST(Jitter, RotationPreservesCentre) {
  Jitter j;
  j.angle = 1.0;
  double x = 0.5;
  double y = 0.5;
  j.apply(x, y);
  EXPECT_NEAR(x, 0.5, 1e-12);
  EXPECT_NEAR(y, 0.5, 1e-12);
}

TEST(SyntheticDigits, AllClassesRender) {
  SequentialRng rng(1);
  for (Label d = 0; d <= 9; ++d) {
    const Image img = render_digit(d, 0.0, rng);
    EXPECT_EQ(img.label, d);
    EXPECT_GT(img.mean_intensity(), 2.0) << "digit " << int(d) << " is blank";
    EXPECT_LT(img.mean_intensity(), 128.0) << "digit " << int(d) << " floods";
  }
  EXPECT_THROW(render_digit(10, 0.0, rng), Error);
}

TEST(SyntheticDigits, ClassesAreVisuallyDistinct) {
  // Mean images of different classes must differ substantially more than
  // samples within a class — the property unsupervised clustering needs.
  SequentialRng rng(5);
  std::vector<std::vector<double>> mean(10, std::vector<double>(kImagePixels, 0.0));
  const int per_class = 20;
  for (Label d = 0; d <= 9; ++d) {
    for (int k = 0; k < per_class; ++k) {
      const Image img = render_digit(d, 0.0, rng);
      for (std::size_t p = 0; p < kImagePixels; ++p) mean[d][p] += img.pixels[p];
    }
  }
  for (Label a = 0; a < 10; ++a) {
    for (Label b = static_cast<Label>(a + 1); b < 10; ++b) {
      const double corr = pearson_correlation(mean[a], mean[b]);
      EXPECT_LT(corr, 0.9) << "classes " << int(a) << " and " << int(b)
                           << " are nearly identical";
    }
  }
}

TEST(SyntheticDigits, DatasetHasUniformLabels) {
  const LabeledDataset ds =
      make_synthetic_digits({.train_count = 100, .test_count = 50, .seed = 3});
  EXPECT_EQ(ds.train.size(), 100u);
  EXPECT_EQ(ds.test.size(), 50u);
  EXPECT_EQ(ds.train.class_count(), 10u);
  for (Label d = 0; d <= 9; ++d) EXPECT_EQ(ds.train.count_label(d), 10u);
}

TEST(SyntheticDigits, SeedReproduces) {
  const auto a = make_synthetic_digits({.train_count = 20, .test_count = 10, .seed = 9});
  const auto b = make_synthetic_digits({.train_count = 20, .test_count = 10, .seed = 9});
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].pixels, b.train[i].pixels);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST(SyntheticDigits, TrainAndTestAreIndependentDraws) {
  const auto ds = make_synthetic_digits({.train_count = 10, .test_count = 10, .seed = 9});
  int identical = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (ds.train[i].pixels == ds.test[i].pixels) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(SyntheticFashion, AllClassesRenderAndAreBrighterThanDigits) {
  SequentialRng rng(1);
  for (Label c = 0; c <= 9; ++c) {
    const Image img = render_fashion(c, 0.0, rng);
    EXPECT_EQ(img.label, c);
    EXPECT_GT(img.mean_intensity(), 5.0) << fashion_class_name(c);
  }
  EXPECT_THROW(render_fashion(10, 0.0, rng), Error);
}

TEST(SyntheticFashion, TopsShareSilhouette) {
  // The deliberate difficulty property (DESIGN.md): pullover(2), coat(4) and
  // shirt(6) overlap heavily; trouser(1) does not overlap them.
  SequentialRng rng(4);
  auto mean_of = [&](Label c) {
    std::vector<double> m(kImagePixels, 0.0);
    for (int k = 0; k < 15; ++k) {
      const Image img = render_fashion(c, 0.0, rng);
      for (std::size_t p = 0; p < kImagePixels; ++p) m[p] += img.pixels[p];
    }
    return m;
  };
  const auto pullover = mean_of(2);
  const auto coat = mean_of(4);
  const auto shirt = mean_of(6);
  const auto trouser = mean_of(1);
  const double vs_coat = pearson_correlation(pullover, coat);
  const double vs_shirt = pearson_correlation(pullover, shirt);
  const double vs_trouser = pearson_correlation(pullover, trouser);
  EXPECT_GT(vs_coat, 0.75);
  EXPECT_GT(vs_shirt, 0.75);
  EXPECT_GT(vs_coat, vs_trouser + 0.1) << "tops must overlap more than "
                                          "unrelated garment classes";
  EXPECT_GT(vs_shirt, vs_trouser + 0.1);
}

TEST(SyntheticFashion, ClassNames) {
  EXPECT_STREQ(fashion_class_name(0), "t-shirt");
  EXPECT_STREQ(fashion_class_name(9), "ankle boot");
  EXPECT_THROW(fashion_class_name(12), Error);
}

TEST(Dataset, HeadSliceShuffle) {
  Dataset ds;
  for (int i = 0; i < 10; ++i) {
    Image img;
    img.label = static_cast<Label>(i % 3);
    ds.push_back(img);
  }
  EXPECT_EQ(ds.head(4).size(), 4u);
  EXPECT_EQ(ds.head(99).size(), 10u);
  EXPECT_EQ(ds.slice(2, 7).size(), 5u);
  EXPECT_THROW(ds.slice(7, 2), Error);
  EXPECT_EQ(ds.class_count(), 3u);
  EXPECT_EQ(ds.count_label(0), 4u);

  SequentialRng rng(1);
  Dataset shuffled = ds;
  shuffled.shuffle(rng);
  EXPECT_EQ(shuffled.size(), ds.size());
  EXPECT_EQ(shuffled.count_label(0), ds.count_label(0));
}

TEST(Dataset, LabellingSplitMatchesPaperProtocol) {
  // Paper: first 1000 test images label, remaining 9000 infer.
  LabeledDataset ds;
  for (int i = 0; i < 100; ++i) {
    Image img;
    img.label = static_cast<Label>(i % 10);
    ds.test.push_back(img);
  }
  const auto [labelling, inference] = ds.labelling_split(30);
  EXPECT_EQ(labelling.size(), 30u);
  EXPECT_EQ(inference.size(), 70u);
  const auto [all, none] = ds.labelling_split(500);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(none.size(), 0u);
}

TEST(Idx, ImagesRoundTrip) {
  const auto ds = make_synthetic_digits({.train_count = 12, .test_count = 1, .seed = 2});
  const std::string path = temp_path("pss_test_images.idx");
  write_idx_images(path, ds.train.images());
  const auto back = read_idx_images(path);
  ASSERT_EQ(back.size(), 12u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].pixels, ds.train[i].pixels);
  }
  std::remove(path.c_str());
}

TEST(Idx, LabelsRoundTrip) {
  const std::vector<Label> labels = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::string path = temp_path("pss_test_labels.idx");
  write_idx_labels(path, labels);
  EXPECT_EQ(read_idx_labels(path), labels);
  std::remove(path.c_str());
}

TEST(Idx, FullDatasetDirectoryRoundTrip) {
  const auto ds = make_synthetic_digits({.train_count = 10, .test_count = 6, .seed = 2});
  const auto dir = std::filesystem::temp_directory_path() / "pss_idx_dir";
  std::filesystem::create_directories(dir);
  std::vector<Label> train_labels;
  std::vector<Label> test_labels;
  for (const auto& img : ds.train.images()) train_labels.push_back(img.label);
  for (const auto& img : ds.test.images()) test_labels.push_back(img.label);
  write_idx_images((dir / "train-images-idx3-ubyte").string(), ds.train.images());
  write_idx_labels((dir / "train-labels-idx1-ubyte").string(), train_labels);
  write_idx_images((dir / "t10k-images-idx3-ubyte").string(), ds.test.images());
  write_idx_labels((dir / "t10k-labels-idx1-ubyte").string(), test_labels);

  const auto loaded = load_idx_dataset(dir.string(), "round-trip");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->train.size(), 10u);
  EXPECT_EQ(loaded->test.size(), 6u);
  EXPECT_EQ(loaded->train[3].label, ds.train[3].label);
  std::filesystem::remove_all(dir);
}

TEST(Idx, MissingDirectoryReturnsNullopt) {
  EXPECT_FALSE(load_idx_dataset("/nonexistent/dir", "x").has_value());
}

TEST(Idx, RejectsCorruptFiles) {
  const std::string path = temp_path("pss_bad.idx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(read_idx_images(path), Error);
  EXPECT_THROW(read_idx_labels(path), Error);
  std::remove(path.c_str());
}

TEST(Pgm, RoundTrip) {
  SequentialRng rng(3);
  const Image img = render_digit(5, 0.02, rng);
  const std::string path = temp_path("pss_test.pgm");
  write_pgm(path, img);
  const Image back = read_pgm(path);
  EXPECT_EQ(back.pixels, img.pixels);
  EXPECT_EQ(back.width, img.width);
  std::remove(path.c_str());
}

TEST(Pgm, ConductanceToImageNormalizes) {
  std::vector<double> row(kImagePixels, 0.0);
  row[0] = 1.0;
  row[1] = 0.5;
  const Image img = conductance_to_image(row, kImageSide, kImageSide, 0.0, 1.0);
  EXPECT_EQ(img.pixels[0], 255);
  EXPECT_EQ(img.pixels[1], 128);
  EXPECT_EQ(img.pixels[2], 0);
}

TEST(Pgm, TileImagesLaysOutGrid) {
  std::vector<Image> maps(4, Image(4, 4));
  maps[3].pixels.assign(16, 200);
  const Image sheet = tile_images(maps, 2, 2, 1);
  EXPECT_EQ(sheet.width, 9);
  EXPECT_EQ(sheet.height, 9);
  EXPECT_EQ(sheet.at(0, 0), 0);
  EXPECT_EQ(sheet.at(5, 5), 200) << "fourth tile at bottom-right";
}

}  // namespace
}  // namespace pss
