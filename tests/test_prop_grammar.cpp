// Grammar fuzz over the `layers=` / `faults=` / run-option parsers (ISSUE
// satellite 1): malformed strings must always produce a structured
// pss::Error — never a crash, a foreign exception type, or silent
// acceptance. The minimized crashers the fuzzer surfaced (non-finite reals
// sliding through parse_real, strtoull ERANGE clamping, UB double→uint64
// casts for faults after=/count=, negative run-option integers wrapping to
// huge unsigned values) are committed as corpora under tests/data/prop/ and
// replayed here so the fixes stay fixed.
#include <gtest/gtest.h>

#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "pss/common/error.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/io/config.hpp"
#include "pss/prop/check.hpp"
#include "pss/prop/generators.hpp"
#include "pss/robust/fault_injection.hpp"
#include "tools/run_options.hpp"

namespace pss {
namespace {

using prop::CheckResult;
using prop::Source;

prop::CheckOptions options_with(std::uint32_t cases) {
  prop::CheckOptions options;
  options.cases = cases;
  return options;
}

/// How a parser call ended. Classification happens inside the try so
/// prop::fail's Failure (deliberately not a std::exception) is never
/// swallowed by the catch-all.
enum class ParseOutcome { kAccepted, kStructuredError, kForeignFailure };

template <typename Fn>
ParseOutcome classify(Fn&& fn, std::string* detail) {
  try {
    fn();
    return ParseOutcome::kAccepted;
  } catch (const Error& e) {
    *detail = e.what();
    return ParseOutcome::kStructuredError;
  } catch (const std::exception& e) {
    *detail = std::string("foreign exception: ") + e.what();
    return ParseOutcome::kForeignFailure;
  } catch (...) {
    *detail = "non-standard exception";
    return ParseOutcome::kForeignFailure;
  }
}

WtaConfig base_config() {
  return WtaConfig::from_table1(LearningOption::kFloat32,
                                StdpKind::kStochastic, 8);
}

// ---------------------------------------------------------------------------
// `layers=` grammar.

TEST(PropGrammar, MutatedLayersSpecsNeverCrashOrLeakForeignExceptions) {
  const CheckResult r = prop::check(
      "fuzz_layers_mutated",
      [](Source& s) {
        const std::string spec = prop::mutate_string(s, prop::gen_layers_spec(s));
        std::string detail;
        const ParseOutcome outcome = classify(
            [&] { graph::graph_config_from_spec(spec, base_config()); },
            &detail);
        PSS_PROP_ASSERT(outcome != ParseOutcome::kForeignFailure,
                        "spec '" + spec + "' escaped as: " + detail);
      },
      options_with(300));
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(PropGrammar, BadLayersSpecsAlwaysRaiseStructuredErrors) {
  const CheckResult r = prop::check(
      "fuzz_layers_bad_families",
      [](Source& s) {
        const std::string spec = prop::gen_bad_layers_spec(s);
        std::string detail;
        const ParseOutcome outcome = classify(
            [&] { graph::graph_config_from_spec(spec, base_config()); },
            &detail);
        PSS_PROP_ASSERT(outcome != ParseOutcome::kAccepted,
                        "malformed spec '" + spec + "' was silently accepted");
        PSS_PROP_ASSERT(outcome == ParseOutcome::kStructuredError,
                        "spec '" + spec + "' escaped as: " + detail);
      },
      options_with(200));
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(PropGrammar, ValidLayersSpecsRoundTripThroughCanonicalForm) {
  const CheckResult r = prop::check(
      "layers_canonical_roundtrip",
      [](Source& s) {
        const std::string spec = prop::gen_layers_spec(s);
        const graph::GraphConfig parsed =
            graph::graph_config_from_spec(spec, base_config());
        const std::string canonical = graph::canonical_layers_spec(parsed);
        const graph::GraphConfig reparsed =
            graph::graph_config_from_spec(canonical, base_config());
        PSS_PROP_ASSERT(graph::canonical_layers_spec(reparsed) == canonical,
                        "canonical form is not a fixed point for '" + spec +
                            "'");
        PSS_PROP_ASSERT(reparsed.layers.size() == parsed.layers.size(),
                        "round-trip changed the layer count");
      },
      options_with(150));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// `faults=` grammar (a private injector — the global registry stays clean).

TEST(PropGrammar, MutatedFaultSpecsNeverCrashOrLeakForeignExceptions) {
  const CheckResult r = prop::check(
      "fuzz_faults_mutated",
      [](Source& s) {
        const std::string spec =
            prop::mutate_string(s, prop::gen_fault_spec(s));
        robust::FaultInjector injector;
        std::string detail;
        const ParseOutcome outcome =
            classify([&] { injector.arm_from_spec(spec); }, &detail);
        PSS_PROP_ASSERT(outcome != ParseOutcome::kForeignFailure,
                        "spec '" + spec + "' escaped as: " + detail);
      },
      options_with(300));
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(PropGrammar, BadFaultSpecsAlwaysRaiseStructuredErrors) {
  const CheckResult r = prop::check(
      "fuzz_faults_bad_families",
      [](Source& s) {
        const std::string spec = prop::gen_bad_fault_spec(s);
        robust::FaultInjector injector;
        std::string detail;
        const ParseOutcome outcome =
            classify([&] { injector.arm_from_spec(spec); }, &detail);
        PSS_PROP_ASSERT(outcome != ParseOutcome::kAccepted,
                        "malformed spec '" + spec + "' was silently accepted");
        PSS_PROP_ASSERT(outcome == ParseOutcome::kStructuredError,
                        "spec '" + spec + "' escaped as: " + detail);
      },
      options_with(200));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// Run-option front door: argv tokens → Config → spec_from_config. Fuzzed
// tokens may legitimately parse (they mix plausible values in); the
// invariant is the error channel, not rejection.

TEST(PropGrammar, FuzzedRunOptionsParseOrRaiseStructuredErrors) {
  const CheckResult r = prop::check(
      "fuzz_run_options",
      [](Source& s) {
        const std::vector<std::string> tokens = prop::gen_run_option_tokens(s);
        std::vector<const char*> argv;
        for (const std::string& t : tokens) argv.push_back(t.c_str());
        std::string detail;
        const ParseOutcome outcome = classify(
            [&] {
              const Config cfg = Config::from_args(
                  static_cast<int>(argv.size()), argv.data(), 0);
              tools::require_known_keys(cfg);
              tools::spec_from_config(cfg, "prop_fuzz");
            },
            &detail);
        PSS_PROP_ASSERT(outcome != ParseOutcome::kForeignFailure,
                        "tokens escaped as: " + detail);
      },
      options_with(300));
  EXPECT_TRUE(r.ok()) << r.report();
}

// ---------------------------------------------------------------------------
// Committed crasher corpora: every line minimized from a fuzzer find, every
// line must raise pss::Error forever.

std::vector<std::string> load_corpus(const std::string& name) {
  const std::string path = std::string(PSS_TEST_DATA_DIR "/prop/") + name;
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing corpus fixture " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  EXPECT_FALSE(lines.empty()) << "empty corpus " << path;
  return lines;
}

TEST(PropGrammarCorpus, LayersCrashersStayFixed) {
  for (const std::string& spec : load_corpus("layers_bad.txt")) {
    std::string detail;
    const ParseOutcome outcome = classify(
        [&] { graph::graph_config_from_spec(spec, base_config()); }, &detail);
    EXPECT_EQ(outcome, ParseOutcome::kStructuredError)
        << "corpus spec '" << spec << "': " << detail;
  }
}

TEST(PropGrammarCorpus, FaultCrashersStayFixed) {
  for (const std::string& spec : load_corpus("faults_bad.txt")) {
    robust::FaultInjector injector;
    std::string detail;
    const ParseOutcome outcome =
        classify([&] { injector.arm_from_spec(spec); }, &detail);
    EXPECT_EQ(outcome, ParseOutcome::kStructuredError)
        << "corpus spec '" << spec << "': " << detail;
  }
}

TEST(PropGrammarCorpus, RunOptionCrashersStayFixed) {
  for (const std::string& token : load_corpus("run_options_bad.txt")) {
    const char* argv[] = {token.c_str()};
    std::string detail;
    const ParseOutcome outcome = classify(
        [&] {
          const Config cfg = Config::from_args(1, argv, 0);
          tools::require_known_keys(cfg);
          tools::spec_from_config(cfg, "prop_corpus");
        },
        &detail);
    EXPECT_EQ(outcome, ParseOutcome::kStructuredError)
        << "corpus token '" << token << "': " << detail;
  }
}

}  // namespace
}  // namespace pss
