// Tests for the statistics helpers and the io module (PGM is covered in
// test_data.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/io/config.hpp"
#include "pss/io/csv.hpp"
#include "pss/io/table.hpp"
#include "pss/stats/confusion.hpp"
#include "pss/stats/histogram.hpp"
#include "pss/stats/raster.hpp"
#include "pss/stats/summary.hpp"

namespace pss {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.99);  // bin 3
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(3), 1u);
}

TEST(Histogram, FractionsAndEdgeMetrics) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 8; ++i) h.add(0.01);
  for (int i = 0; i < 2; ++i) h.add(0.99);
  EXPECT_DOUBLE_EQ(h.bottom_fraction(), 0.8);
  EXPECT_DOUBLE_EQ(h.top_fraction(), 0.2);
}

TEST(Histogram, MeanAndVarianceTrackRawValues) {
  Histogram h(0.0, 10.0, 5);
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.variance(), 5.0);
}

TEST(Histogram, CentersAndRendering) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.center(0), 0.25);
  EXPECT_DOUBLE_EQ(h.center(1), 0.75);
  h.add(0.1);
  EXPECT_NE(h.to_string().find('#'), std::string::npos);
}

TEST(ConfusionMatrix, AccuracyAndRecall) {
  ConfusionMatrix m(3);
  m.record(0, 0);
  m.record(0, 1);
  m.record(1, 1);
  m.record(2, 2);
  m.record(2, 2);
  EXPECT_EQ(m.total(), 5u);
  EXPECT_EQ(m.correct(), 4u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.8);
  const auto recall = m.recall();
  EXPECT_DOUBLE_EQ(recall[0], 0.5);
  EXPECT_DOUBLE_EQ(recall[1], 1.0);
  EXPECT_DOUBLE_EQ(recall[2], 1.0);
}

TEST(ConfusionMatrix, AbstentionsCountAsErrors) {
  ConfusionMatrix m(2);
  m.record(0, -1);
  m.record(1, 1);
  EXPECT_EQ(m.abstentions(), 1u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.record(5, 0), Error);
  EXPECT_THROW(m.record(0, 7), Error);
  EXPECT_THROW(m.count(0, 9), Error);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  EXPECT_DOUBLE_EQ(ConfusionMatrix(4).accuracy(), 0.0);
}

TEST(SpikeRaster, RecordsAndQueriesRows) {
  SpikeRaster raster(4, 100.0);
  raster.record(2, 10.0);
  raster.record(2, 30.0);
  raster.record(1, 50.0);
  EXPECT_EQ(raster.spike_count(), 3u);
  EXPECT_EQ(raster.row_times(2), (std::vector<TimeMs>{10.0, 30.0}));
  EXPECT_DOUBLE_EQ(raster.row_rate_hz(2), 20.0);
  EXPECT_DOUBLE_EQ(raster.row_rate_hz(0), 0.0);
  EXPECT_THROW(raster.record(9, 1.0), Error);
}

TEST(SpikeRaster, AsciiRenderingShowsDots) {
  SpikeRaster raster(2, 100.0);
  raster.record(0, 50.0);
  const std::string art = raster.to_string(10, 2);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(Summary, BasicStats) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const SummaryStats s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Summary, EmptyIsAllZero) {
  const SummaryStats s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, PearsonCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, down), -1.0, 1e-12);
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, flat), 0.0);
}

TEST(Summary, QuartileContrast) {
  // Bottom quartile mean 0, top quartile mean 1 -> contrast 1.
  const std::vector<double> v = {0.0, 0.0, 0.5, 0.5, 0.5, 0.5, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(quartile_contrast(v), 1.0);
  const std::vector<double> uniform(8, 0.4);
  EXPECT_DOUBLE_EQ(quartile_contrast(uniform), 0.0);
}

TEST(TablePrinter, AlignsColumnsAndFormats) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.345}, 2);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.35"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), Error);
}

TEST(TablePrinter, FormatFixedHelper) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(78.0, 0), "78");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = temp_path("pss_test.csv");
  {
    CsvWriter csv(path, {"x", "y"});
    csv.row(std::vector<std::string>{"1", "2"});
    csv.row(std::vector<double>{3.5, 4.5});
    EXPECT_EQ(csv.rows_written(), 2u);
    EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}), Error);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Config, ParsesArgsAndTypes) {
  const char* argv[] = {"prog", "alpha=1.5", "count=42", "flag=true",
                        "name=test"};
  const Config c = Config::from_args(5, argv);
  EXPECT_DOUBLE_EQ(c.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(c.get_int("count", 0), 42);
  EXPECT_TRUE(c.get_bool("flag", false));
  EXPECT_EQ(c.get_string("name", ""), "test");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_TRUE(c.has("alpha"));
  EXPECT_FALSE(c.has("beta"));
}

TEST(Config, ParsesFileWithComments) {
  const std::string path = temp_path("pss_test.cfg");
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "key = value # trailing comment\n"
        << "\n"
        << "n=3\n";
  }
  const Config c = Config::from_file(path);
  EXPECT_EQ(c.get_string("key", ""), "value");
  EXPECT_EQ(c.get_int("n", 0), 3);
  EXPECT_EQ(c.keys().size(), 2u);
  std::remove(path.c_str());
}

TEST(Config, RejectsMalformedInput) {
  const char* bad[] = {"prog", "no-equals-sign"};
  EXPECT_THROW(Config::from_args(2, bad), Error);
  const char* badnum[] = {"prog", "x=abc"};
  const Config c = Config::from_args(2, badnum);
  EXPECT_THROW(c.get_double("x", 0.0), Error);
  EXPECT_THROW(c.get_bool("x", false), Error);
}

TEST(Log, LevelGateWorks) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages must not crash and are dropped silently.
  PSS_LOG_DEBUG << "dropped";
  PSS_LOG_INFO << "dropped too";
  set_log_level(original);
}

}  // namespace
}  // namespace pss
