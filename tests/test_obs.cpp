// Observability-layer tests: metrics registry semantics (bucket edges,
// sharded merges under concurrency), trace JSON well-formedness, log sink
// plumbing, engine launch accounting, the hardware-counter profiler's
// graceful degradation + sidecar, the Prometheus exporter, and — the
// load-bearing contract — that enabling metrics/tracing/profiling cannot
// perturb bitwise reproducibility (including the worker-count-invariance
// property with tracing on).
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pss/common/log.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/engine/launch.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/obs/exporter.hpp"
#include "pss/serve/net.hpp"
#include "pss/obs/json_writer.hpp"
#include "pss/obs/manifest.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"
#include "pss/obs/trace.hpp"

namespace pss {
namespace {

/// Restores the global obs gates (and clears run-scoped obs state) so tests
/// cannot leak an enabled gate into each other.
class ObsGuard {
 public:
  ObsGuard() { reset(); }
  ~ObsGuard() { reset(); }

 private:
  static void reset() {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    obs::set_profile_enabled(false);
    obs::set_profile_forced_unavailable(false);
    obs::reset_trace();
    obs::metrics().reset();
    obs::profiler().reset();
  }
};

// ---- minimal JSON validator (well-formedness only) -------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, EscapesAndNestsCorrectly) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.member("plain", 42);
    w.member("text", std::string("a\"b\\c\n\tend"));
    w.key("nested");
    w.begin_array();
    w.value(1.5);
    w.value(-7);
    w.begin_object();
    w.member("inf", std::numeric_limits<double>::infinity());
    w.end_object();
    w.end_array();
    w.end_object();
  }
  const std::string out = os.str();
  EXPECT_TRUE(JsonValidator(out).valid()) << out;
  EXPECT_NE(out.find("\\\"b\\\\c\\n"), std::string::npos) << out;
  EXPECT_NE(out.find("\"inf\": null"), std::string::npos) << out;
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, HistogramBucketEdgeSemantics) {
  ObsGuard guard;
  obs::FixedHistogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.bucket_count(), 4u);  // 3 edges + overflow

  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == edge   -> bucket 0 (edges are inclusive uppers)
  h.observe(1.0001); // > 1, <=10 -> bucket 1
  h.observe(10.0);   // == edge   -> bucket 1
  h.observe(99.0);   //           -> bucket 2
  h.observe(100.5);  // > last    -> overflow
  h.observe(1e9);    //           -> overflow

  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.5 + 1e9, 1e-3);
}

TEST(Metrics, HistogramRejectsBadEdges) {
  EXPECT_THROW(obs::FixedHistogram({}), Error);
  EXPECT_THROW(obs::FixedHistogram({1.0, 1.0}), Error);
  EXPECT_THROW(obs::FixedHistogram({2.0, 1.0}), Error);
}

TEST(Metrics, ShardedCounterMergesUnderConcurrency) {
  ObsGuard guard;
  obs::Counter& c = obs::metrics().counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, ConcurrentHistogramAndGauge) {
  ObsGuard guard;
  obs::FixedHistogram& h =
      obs::metrics().histogram("test.conc_hist", {0.5, 1.5, 2.5});
  obs::Gauge& g = obs::metrics().gauge("test.conc_gauge");
  constexpr int kThreads = 4;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kObs; ++i) {
        h.observe(static_cast<double>(t % 3));  // buckets 0, 1, 2
        g.add(0.25);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads) * kObs);
  EXPECT_NEAR(g.value(), kThreads * kObs * 0.25, 1e-6);
}

TEST(Metrics, RegistryResetKeepsReferencesValid) {
  ObsGuard guard;
  obs::Counter& c = obs::metrics().counter("test.reset");
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
  obs::metrics().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(obs::metrics().counter("test.reset").value(), 2u);
  EXPECT_EQ(&obs::metrics().counter("test.reset"), &c);
}

TEST(Metrics, TextAndJsonExports) {
  ObsGuard guard;
  obs::metrics().counter("test.export.count").add(3);
  obs::metrics().gauge("test.export.gauge").set(1.25);
  obs::metrics().histogram("test.export.hist", {1.0, 2.0}).observe(1.5);

  const std::string text = obs::metrics().to_text();
  EXPECT_NE(text.find("counter test.export.count 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge test.export.gauge 1.25"), std::string::npos)
      << text;

  std::ostringstream os;
  obs::metrics().write_json(os, "unit-test");
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"pss.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist\""), std::string::npos);
}

// ---- tracing ---------------------------------------------------------------

TEST(Trace, SpansRecordOnlyWhenEnabled) {
  ObsGuard guard;
  { obs::TraceSpan off("never", "test"); }
  EXPECT_TRUE(obs::collect_trace().empty());

  obs::set_trace_enabled(true);
  obs::reset_trace();
  { obs::TraceSpan on("recorded", "test", 7); }
  const auto events = obs::collect_trace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "recorded");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_EQ(events[0].arg, 7);
}

TEST(Trace, ChromeExportIsWellFormedJson) {
  ObsGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace();
  { obs::TraceSpan a("alpha", "test"); }
  std::thread([] { obs::TraceSpan b("beta", "test", 3); }).join();

  const std::string path = temp_path("pss_test_trace.json");
  obs::write_chrome_trace(path);
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  std::filesystem::remove(path);

  const auto totals = obs::span_totals();
  ASSERT_EQ(totals.size(), 2u);  // sorted by name
  EXPECT_EQ(totals[0].name, "alpha");
  EXPECT_EQ(totals[1].name, "beta");
  EXPECT_EQ(totals[1].count, 1u);
}

// ---- engine accounting -----------------------------------------------------

TEST(Engine, PerTagLaunchAccounting) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  Engine engine(1);
  std::vector<double> v(64, 0.0);
  for (int rep = 0; rep < 3; ++rep) {
    engine.launch("tag.a", v.size(), [&](std::size_t i) { v[i] += 1.0; });
  }
  engine.launch("tag.b", v.size(), [&](std::size_t i) { v[i] += 1.0; });

  const auto stats = engine.tag_stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t a_launches = 0, b_launches = 0;
  for (const auto& s : stats) {
    if (std::string(s.tag) == "tag.a") a_launches = s.launches;
    if (std::string(s.tag) == "tag.b") b_launches = s.launches;
  }
  EXPECT_EQ(a_launches, 3u);
  EXPECT_EQ(b_launches, 1u);
  EXPECT_EQ(engine.launch_count(), 4u);
  EXPECT_EQ(engine.dispatch_count(), 0u);  // single-worker engine: all inline

  engine.reset_counters();
  EXPECT_EQ(engine.launch_count(), 0u);
  EXPECT_TRUE(engine.tag_stats().empty());
}

TEST(Engine, PublishEngineStatsMirrorsIntoRegistry) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  Engine engine(2);
  engine.set_grain(0);  // force pool dispatch
  std::vector<double> v(128, 0.0);
  engine.launch("tag.pub", v.size(), [&](std::size_t i) { v[i] += 1.0; });
  publish_engine_stats(engine, "test.engine");
  EXPECT_EQ(obs::metrics().gauge("test.engine.launches").value(), 1.0);
  EXPECT_EQ(obs::metrics().gauge("test.engine.dispatches").value(), 1.0);
  EXPECT_EQ(obs::metrics().gauge("test.engine.tag.tag.pub.launches").value(),
            1.0);
}

// ---- hardware-counter profiler ---------------------------------------------

TEST(Profile, AccumSemantics) {
  ObsGuard guard;
  obs::ProfileAccum accum;

  obs::PerfReading begin;
  begin.valid = true;
  begin.time_enabled = 100;
  begin.time_running = 100;
  begin.cycles = 1000;
  begin.instructions = 2000;
  begin.cache_misses = 10;
  begin.branch_misses = 5;
  obs::PerfReading end = begin;
  end.time_enabled = 300;
  end.time_running = 200;
  end.cycles = 3000;
  end.instructions = 6000;
  end.cache_misses = 22;
  end.branch_misses = 9;

  accum.add(begin, end);
  EXPECT_EQ(accum.samples(), 1u);
  EXPECT_EQ(accum.enabled_ns(), 200u);
  EXPECT_EQ(accum.running_ns(), 100u);
  EXPECT_EQ(accum.cycles(), 2000u);
  EXPECT_EQ(accum.instructions(), 4000u);
  EXPECT_EQ(accum.cache_misses(), 12u);
  EXPECT_EQ(accum.branch_misses(), 4u);

  // Invalid readings must not accumulate (the unavailable-host path).
  obs::PerfReading invalid;
  accum.add(invalid, end);
  accum.add(begin, invalid);
  EXPECT_EQ(accum.samples(), 1u);

  // Counter going backwards (reset paranoia): sample dropped.
  accum.add(end, begin);
  EXPECT_EQ(accum.samples(), 1u);

  accum.reset();
  EXPECT_EQ(accum.samples(), 0u);
  EXPECT_EQ(accum.cycles(), 0u);
}

TEST(Profile, SnapshotDerivesRatiosAndSkipsEmptyRows) {
  ObsGuard guard;
  obs::ProfileAccum& row = obs::profiler().row("test.profile.row");
  obs::profiler().row("test.profile.untouched");  // stays sample-free

  obs::PerfReading begin;
  begin.valid = true;
  obs::PerfReading end = begin;
  end.time_enabled = 1000;
  end.time_running = 500;
  end.cycles = 4000;
  end.instructions = 8000;
  end.cache_misses = 16;
  end.branch_misses = 8;
  row.add(begin, end);

  const auto rows = obs::profiler().snapshot();
  ASSERT_EQ(rows.size(), 1u);  // zero-sample rows filtered
  EXPECT_EQ(rows[0].key, "test.profile.row");
  EXPECT_EQ(rows[0].samples, 1u);
  EXPECT_DOUBLE_EQ(rows[0].ipc, 2.0);
  EXPECT_DOUBLE_EQ(rows[0].cache_miss_per_kinst, 2.0);   // 16 per 8k inst
  EXPECT_DOUBLE_EQ(rows[0].branch_miss_per_kinst, 1.0);  // 8 per 8k inst
  EXPECT_DOUBLE_EQ(rows[0].multiplex_fraction, 0.5);

  // Same-name lookup returns the same accumulator (stable references).
  EXPECT_EQ(&obs::profiler().row("test.profile.row"), &row);
}

TEST(Profile, GracefulDegradationWhenPerfUnavailable) {
  ObsGuard guard;
  // Force the container reality even on perf-capable hosts: every read
  // reports invalid, nothing accumulates, nothing throws.
  obs::set_profile_forced_unavailable(true);
  obs::set_profile_enabled(true);
  obs::set_metrics_enabled(true);

  EXPECT_FALSE(obs::profile_available());
  EXPECT_FALSE(obs::perf_read_now().valid);

  obs::ProfileAccum& row = obs::profiler().row("test.degraded");
  {
    const obs::PerfScope scope(obs::profile_enabled() ? &row : nullptr);
  }
  EXPECT_EQ(row.samples(), 0u);

  // A profiled Engine launch still runs to completion.
  Engine engine(1);
  std::vector<double> v(32, 0.0);
  engine.launch("test.degraded.launch", v.size(),
                [&](std::size_t i) { v[i] += 1.0; });
  EXPECT_EQ(v[0], 1.0);

  // The sidecar still writes, as a valid document reporting available=0.
  obs::publish_profile_stats();
  EXPECT_EQ(obs::metrics().gauge("profile.available").value(), 0.0);
  const std::string path = temp_path("pss_test_profile.json");
  obs::write_profile_json(path, "unit-test");
  const std::string json = read_file(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"pss.profile.v1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"available\": 0"), std::string::npos) << json;
}

TEST(Profile, SidecarCarriesAccumulatedRows) {
  ObsGuard guard;
  obs::ProfileAccum& row = obs::profiler().row("kernel.test.sidecar");
  obs::PerfReading begin;
  begin.valid = true;
  obs::PerfReading end = begin;
  end.time_enabled = 10;
  end.time_running = 10;
  end.cycles = 100;
  end.instructions = 250;
  row.add(begin, end);

  const std::string path = temp_path("pss_test_profile_rows.json");
  obs::write_profile_json(path, "unit-test");
  const std::string json = read_file(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"kernel.test.sidecar\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ipc\": 2.5"), std::string::npos) << json;
}

// ---- Prometheus exposition -------------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("phase.encode.ns"), "pss_phase_encode_ns");
  EXPECT_EQ(obs::prometheus_name("a-b c/d"), "pss_a_b_c_d");
}

TEST(Prometheus, RenderCoversAllMetricKinds) {
  ObsGuard guard;
  obs::metrics().counter("prom.count").add(7);
  obs::metrics().gauge("prom.gauge").set(2.5);
  obs::FixedHistogram& h = obs::metrics().histogram("prom.hist", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);

  const std::string text = obs::render_prometheus(obs::metrics());
  EXPECT_NE(text.find("# TYPE pss_prom_count counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pss_prom_count 7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE pss_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("pss_prom_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pss_prom_hist histogram"), std::string::npos);
  // Buckets are cumulative: 1, 2, and +Inf carrying the full total.
  EXPECT_NE(text.find("pss_prom_hist_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pss_prom_hist_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("pss_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("pss_prom_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("pss_prom_hist_sum"), std::string::npos);
}

namespace {

/// One full scrape via the serve/net wrapper (the only TU allowed raw
/// socket syscalls — lint rule `raw-socket-syscall`).
std::string scrape_once(std::uint16_t port, int timeout_ms = 5000) {
  const int fd = pss::serve::net::connect_loopback(port, timeout_ms);
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  EXPECT_TRUE(pss::serve::net::write_all(fd, request.data(), request.size(),
                                         timeout_ms));
  std::string response;
  char buf[4096];
  std::ptrdiff_t n;
  while ((n = pss::serve::net::read_some(fd, buf, sizeof buf, timeout_ms)) >
         0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  pss::serve::net::close_fd(fd);
  return response;
}

}  // namespace

TEST(Prometheus, ExporterServesScrapeOverLoopback) {
  ObsGuard guard;
  obs::metrics().counter("prom.scrape.count").add(11);

  obs::MetricsExporter exporter(0);  // ephemeral port
  ASSERT_NE(exporter.port(), 0);

  const std::string response = scrape_once(exporter.port());
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain"), std::string::npos) << response;
  EXPECT_NE(response.find("pss_prom_scrape_count 11"), std::string::npos)
      << response;

  exporter.stop();
  exporter.stop();  // idempotent
}

TEST(Prometheus, ExporterSurvivesSlowLorisClients) {
  ObsGuard guard;
  obs::metrics().counter("prom.loris.count").add(5);

  obs::MetricsExporter exporter(0);
  ASSERT_NE(exporter.port(), 0);

  // A slow-loris client: connects, never sends its request, and idles. The
  // exporter's single acceptor must cut it off at the per-connection read
  // deadline (1 s) instead of wedging behind it forever.
  const int loris = pss::serve::net::connect_loopback(exporter.port(), 5000);
  // A trickler: sends a byte of garbage, then stalls mid-header.
  const int trickler =
      pss::serve::net::connect_loopback(exporter.port(), 5000);
  (void)pss::serve::net::write_all(trickler, "G", 1, 1000);

  // A well-behaved scrape queued behind both must still complete: the two
  // stalled connections cost at most one read deadline each.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string response = scrape_once(exporter.port(), 10000);
  const double waited_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("pss_prom_loris_count 5"), std::string::npos)
      << response;
  // Two stalled clients x 1 s read deadline, plus scheduling slack.
  EXPECT_LT(waited_s, 8.0);

  // The stalled connections were dropped without a response.
  char sink;
  EXPECT_LE(pss::serve::net::read_some(loris, &sink, 1, 100), 0);
  pss::serve::net::close_fd(loris);
  pss::serve::net::close_fd(trickler);
  exporter.stop();
}

// ---- logging ---------------------------------------------------------------

TEST(Log, SinkCapturesIsoTimestampedLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  PSS_LOG_INFO << "observability " << 42;
  PSS_LOG_DEBUG << "fine-grained";
  set_log_level(LogLevel::kWarn);
  PSS_LOG_INFO << "suppressed";
  set_log_level(before);
  set_log_sink({});  // restore stderr default

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("[pss INFO] observability 42"),
            std::string::npos)
      << captured[0].second;
  // ISO-8601 UTC prefix: YYYY-MM-DDTHH:MM:SS.mmmZ
  const std::string& line = captured[0].second;
  ASSERT_GE(line.size(), 24u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[7], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[13], ':');
  EXPECT_EQ(line[16], ':');
  EXPECT_EQ(line[19], '.');
  EXPECT_EQ(line[23], 'Z');
}

// ---- manifest --------------------------------------------------------------

TEST(Manifest, WritesPhaseBreakdownAndValidJson) {
  ObsGuard guard;
  obs::metrics().counter("phase.encode.ns").add(600'000'000);
  obs::metrics().counter("phase.integrate.ns").add(400'000'000);

  const auto phases = obs::phase_seconds();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first, "encode");
  EXPECT_NEAR(phases[0].second, 0.6, 1e-9);

  obs::RunManifest m;
  m.tool = "test";
  m.dataset = "synthetic";
  m.seed = 9;
  m.workers = 2;
  m.wall_seconds = 1.25;
  m.config.emplace_back("neurons", "20");
  m.results.emplace_back("accuracy", 0.5);

  const std::string path = temp_path("pss_test_manifest.json");
  obs::write_manifest(path, m);
  const std::string json = read_file(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"pss.manifest.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"encode\""), std::string::npos);
}

// ---- reproducibility with observability on ---------------------------------

WtaConfig small_config() {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                         StdpKind::kStochastic, 15);
  cfg.seed = 21;
  return cfg;
}

std::vector<double> train_conductances(bool observe, bool profile = false) {
  obs::set_metrics_enabled(observe);
  obs::set_trace_enabled(observe);
  obs::set_profile_enabled(profile);
  if (observe) obs::reset_trace();
  SyntheticConfig synth;
  synth.train_count = 12;
  synth.test_count = 4;
  LabeledDataset data = make_synthetic_digits(synth);
  WtaNetwork net(small_config());
  UnsupervisedTrainer trainer(net, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 60.0});
  trainer.train(data.train.head(10));
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  obs::set_profile_enabled(false);
  return net.conductance().to_vector();
}

TEST(Reproducibility, IdenticalWithObservabilityOnAndOff) {
  ObsGuard guard;
  const std::vector<double> g_plain = train_conductances(false);
  const std::vector<double> g_observed = train_conductances(true);
  EXPECT_EQ(g_plain, g_observed);  // bitwise: double == double
  // And the observed run actually collected something.
  EXPECT_GT(obs::metrics().counter("present.count").value(), 0u);
  EXPECT_FALSE(obs::collect_trace().empty());
}

TEST(Reproducibility, IdenticalWithProfilingOnAndOff) {
  ObsGuard guard;
  const std::vector<double> g_plain = train_conductances(false);
  // Profiled run, on whatever this host offers: real counter-group reads on
  // perf-capable machines, the invalid-reading path in containers. Both must
  // leave training bitwise untouched — profiling is observational only.
  const std::vector<double> g_profiled =
      train_conductances(/*observe=*/true, /*profile=*/true);
  EXPECT_EQ(g_plain, g_profiled);

  // And again with availability forced off, so the degradation branch is
  // exercised even on perf-capable hosts.
  obs::set_profile_forced_unavailable(true);
  const std::vector<double> g_degraded =
      train_conductances(/*observe=*/true, /*profile=*/true);
  obs::set_profile_forced_unavailable(false);
  EXPECT_EQ(g_plain, g_degraded);
}

TEST(Reproducibility, WorkerCountInvarianceHoldsWithTracingOn) {
  ObsGuard guard;
  SyntheticConfig synth;
  synth.train_count = 10;
  synth.test_count = 12;
  LabeledDataset data = make_synthetic_digits(synth);
  const PixelFrequencyMap map(1.0, 22.0);

  WtaNetwork trained(small_config());
  UnsupervisedTrainer trainer(trained, TrainerConfig{.f_min_hz = 1.0, .f_max_hz = 22.0, .t_learn_ms = 60.0});
  trainer.train(data.train.head(8));

  // Sequential labelling, observability off.
  Engine serial(1);
  WtaNetwork seq_net = trained.replicate(&serial);
  const LabelingResult seq =
      label_neurons(seq_net, data.test.head(10), map, 60.0);

  // Batched labelling across 2 workers with metrics + tracing enabled.
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::reset_trace();
  BatchRunner runner(2);
  WtaNetwork batch_net = trained.replicate(&serial);
  const LabelingResult batched =
      label_neurons(batch_net, data.test.head(10), map, 60.0, runner);
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);

  EXPECT_EQ(seq.neuron_labels, batched.neuron_labels);
  EXPECT_EQ(seq.response, batched.response);
  // The traced batched run produced per-shard spans.
  bool saw_shard_span = false;
  for (const auto& e : obs::collect_trace()) {
    if (std::string(e.name) == "batch.shard") saw_shard_span = true;
  }
  EXPECT_TRUE(saw_shard_span);
}

}  // namespace
}  // namespace pss
