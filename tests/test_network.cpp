// Tests for the WTA network (paper Fig. 3) and the generic activity
// simulation used by the Fig. 4 comparison.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pss/common/error.hpp"
#include "pss/engine/launch.hpp"
#include "pss/network/simulation.hpp"
#include "pss/network/topology.hpp"
#include "pss/network/wta_network.hpp"

namespace pss {
namespace {

WtaConfig small_config(StdpKind kind = StdpKind::kStochastic) {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32, kind, 20);
  cfg.input_channels = 64;  // 8x8 synthetic input for fast tests
  cfg.seed = 77;
  // Fixed amplitude: these tests pin down the raw eq. 1-3 dynamics; the
  // auto-gain has its own dedicated tests below.
  cfg.reference_total_rate_hz = 0.0;
  return cfg;
}

std::vector<double> pattern_rates(double hot = 40.0, double cold = 1.0) {
  std::vector<double> rates(64, cold);
  for (int i = 0; i < 16; ++i) rates[i] = hot;  // "feature" channels 0..15
  return rates;
}

TEST(Topology, AllToAllCount) {
  const auto conns =
      connect_all_to_all(3, 4, [](NeuronIndex, NeuronIndex) { return 0.5; });
  EXPECT_EQ(conns.size(), 12u);
  for (const auto& c : conns) EXPECT_DOUBLE_EQ(c.weight, 0.5);
}

TEST(Topology, OneToOneMapsIdentically) {
  const auto conns = connect_one_to_one(5, 1.5);
  ASSERT_EQ(conns.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(conns[i].pre, conns[i].post);
    EXPECT_EQ(conns[i].pre, i);
  }
}

TEST(Topology, RandomDensityMatchesProbability) {
  SequentialRng rng(1);
  const auto conns = connect_random(
      100, 100, 0.01, [](NeuronIndex, NeuronIndex) { return 1.0; }, rng);
  // 10^4 expected synapses for the paper's Fig. 4 network at p = 0.01 over
  // 10^3 neurons; here 100 expected +- sampling noise.
  EXPECT_NEAR(static_cast<double>(conns.size()), 100.0, 40.0);
}

TEST(Topology, ValidationCatchesBadIndices) {
  std::vector<Connection> conns = {{5, 0, 1.0, 1.0}};
  EXPECT_THROW(validate_connections(conns, 3, 3), Error);
  conns = {{0, 9, 1.0, 1.0}};
  EXPECT_THROW(validate_connections(conns, 3, 3), Error);
}

TEST(WtaNetwork, SilentWithoutInput) {
  WtaNetwork net(small_config());
  const std::vector<double> zero(64, 0.0);
  const auto r = net.present(zero, 200.0, false);
  EXPECT_EQ(r.total_spikes, 0u);
  EXPECT_EQ(r.winner(), -1);
}

TEST(WtaNetwork, SpikesUnderPatternedInput) {
  WtaNetwork net(small_config());
  const auto r = net.present(pattern_rates(), 500.0, false);
  EXPECT_GT(r.total_spikes, 0u);
  EXPECT_GT(r.input_spikes, 100u);
  EXPECT_GE(r.winner(), 0);
}

TEST(WtaNetwork, SameSeedReproducesExactly) {
  WtaNetwork a(small_config());
  WtaNetwork b(small_config());
  const auto rates = pattern_rates();
  for (int i = 0; i < 3; ++i) {
    const auto ra = a.present(rates, 300.0, true);
    const auto rb = b.present(rates, 300.0, true);
    EXPECT_EQ(ra.spike_counts, rb.spike_counts);
  }
  EXPECT_EQ(a.conductance().to_vector(), b.conductance().to_vector());
}

TEST(WtaNetwork, LearningMovesConductanceTowardPattern) {
  WtaNetwork net(small_config());
  const auto rates = pattern_rates(/*hot=*/70.0, /*cold=*/2.0);
  for (int i = 0; i < 20; ++i) net.present(rates, 400.0, true);

  // The winner's row should separate feature channels (0..15) from
  // background; untouched rows stay near initialization, so check the best
  // per-neuron gap rather than the population average.
  const auto& g = net.conductance();
  double best_gap = -1.0;
  for (NeuronIndex j = 0; j < net.neuron_count(); ++j) {
    const auto row = g.row(j);
    double feature = 0.0;
    double background = 0.0;
    for (int c = 0; c < 16; ++c) feature += row[c];
    for (int c = 16; c < 64; ++c) background += row[c];
    best_gap = std::max(best_gap, feature / 16.0 - background / 48.0);
  }
  EXPECT_GT(best_gap, 0.15)
      << "STDP must separate feature from background conductance";
}

TEST(WtaNetwork, NoLearningWhenDisabled) {
  WtaNetwork net(small_config());
  const auto before = net.conductance().to_vector();
  net.present(pattern_rates(), 500.0, false);
  EXPECT_EQ(net.conductance().to_vector(), before);
}

TEST(WtaNetwork, DeterministicRuleAlsoLearns) {
  WtaNetwork net(small_config(StdpKind::kDeterministic));
  const auto rates = pattern_rates();
  const auto before = net.conductance().to_vector();
  net.present(rates, 500.0, true);
  EXPECT_NE(net.conductance().to_vector(), before);
}

TEST(WtaNetwork, ThetaGrowsOnlyDuringLearning) {
  WtaNetwork net(small_config());
  const auto rates = pattern_rates();
  net.present(rates, 500.0, false);
  const double theta_after_readout =
      std::accumulate(net.theta().begin(), net.theta().end(), 0.0);
  EXPECT_DOUBLE_EQ(theta_after_readout, 0.0);
  net.present(rates, 500.0, true);
  const double theta_after_learning =
      std::accumulate(net.theta().begin(), net.theta().end(), 0.0);
  EXPECT_GT(theta_after_learning, 0.0);
}

TEST(WtaNetwork, HomeostasisCanBeDisabled) {
  WtaConfig cfg = small_config();
  cfg.homeostasis.enabled = false;
  WtaNetwork net(cfg);
  net.present(pattern_rates(), 500.0, true);
  for (double t : net.theta()) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(WtaNetwork, WtaInhibitionConcentratesLearningSpikes) {
  // With a hard WTA (long t_inh) a single presentation's spikes should be
  // dominated by few neurons.
  WtaConfig cfg = small_config();
  cfg.t_inh_ms = 30.0;
  WtaNetwork net(cfg);
  const auto r = net.present(pattern_rates(), 500.0, true);
  ASSERT_GT(r.total_spikes, 0u);
  const auto top = *std::max_element(r.spike_counts.begin(),
                                     r.spike_counts.end());
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(r.total_spikes),
            0.3)
      << "hard WTA should concentrate spikes on the winner";
}

TEST(WtaNetwork, PresentationsAreIndependent) {
  // Presenting a blank image between two identical patterned images must
  // not change the second response relative to back-to-back presentation
  // beyond encoder phase (timers and membranes reset per presentation).
  WtaNetwork net(small_config());
  const std::vector<double> zero(64, 0.0);
  const auto r1 = net.present(pattern_rates(), 200.0, false);
  net.present(zero, 100.0, false);
  const auto r2 = net.present(pattern_rates(), 200.0, false);
  // Same network, frozen weights: responses should be similar in magnitude.
  EXPECT_NEAR(static_cast<double>(r1.total_spikes),
              static_cast<double>(r2.total_spikes),
              std::max<double>(6.0, 0.5 * static_cast<double>(r1.total_spikes)));
}

TEST(WtaNetwork, BiologicalClockAdvances) {
  WtaNetwork net(small_config());
  EXPECT_DOUBLE_EQ(net.now(), 0.0);
  net.present(pattern_rates(), 250.0, false);
  EXPECT_DOUBLE_EQ(net.now(), 250.0);
  net.present(pattern_rates(), 100.0, false);
  EXPECT_DOUBLE_EQ(net.now(), 350.0);
}

TEST(WtaNetwork, RejectsBadInput) {
  WtaNetwork net(small_config());
  const std::vector<double> wrong(10, 1.0);
  EXPECT_THROW(net.present(wrong, 100.0, false), Error);
  EXPECT_THROW(net.present(pattern_rates(), 0.0, false), Error);
}

TEST(WtaNetwork, FromTable1AppliesFormatAndGate) {
  const WtaConfig cfg =
      WtaConfig::from_table1(LearningOption::k2Bit, StdpKind::kStochastic, 10);
  ASSERT_TRUE(cfg.stdp.format.has_value());
  EXPECT_EQ(cfg.stdp.format->name(), "Q0.2");
  EXPECT_DOUBLE_EQ(cfg.stdp.gate.gamma_pot, 0.2);
  // Magnitudes fall back to the 16-bit row values.
  EXPECT_DOUBLE_EQ(cfg.stdp.magnitude.alpha_p, 0.01);
}

TEST(WtaNetwork, QuantizedNetworkKeepsConductanceOnGrid) {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::k2Bit,
                                         StdpKind::kStochastic, 10);
  cfg.input_channels = 64;
  WtaNetwork net(cfg);
  for (int i = 0; i < 5; ++i) net.present(pattern_rates(), 300.0, true);
  for (double g : net.conductance().to_vector()) {
    ASSERT_TRUE(q0_2().representable(g)) << g;
  }
}

TEST(WtaNetwork, AutoGainEqualizesDriveAcrossFrequencies) {
  // With the auto-gain referenced to the pattern's own total rate, tripling
  // every channel rate must NOT triple the response (each spike carries a
  // third of the charge); with fixed amplitude it blows up.
  WtaConfig gained = small_config();
  gained.reference_total_rate_hz = 700.0;  // ~ the pattern's total rate
  WtaNetwork with_gain(gained);
  const auto rates1 = pattern_rates();
  std::vector<double> rates3(rates1);
  for (double& r : rates3) r *= 3.0;

  const auto r1 = with_gain.present(rates1, 400.0, false);
  const auto r3 = with_gain.present(rates3, 400.0, false);
  ASSERT_GT(r1.total_spikes, 0u);
  EXPECT_LT(static_cast<double>(r3.total_spikes),
            2.0 * static_cast<double>(r1.total_spikes));

  WtaNetwork fixed(small_config());
  const auto f1 = fixed.present(rates1, 400.0, false);
  const auto f3 = fixed.present(rates3, 400.0, false);
  EXPECT_GT(f3.total_spikes, 2 * f1.total_spikes)
      << "without gain, 3x input rate must overdrive the network";
}

TEST(WtaNetwork, RecordSpikesCapturesEvents) {
  WtaNetwork net(small_config());
  const auto r = net.present(pattern_rates(), 300.0, false,
                             /*record_spikes=*/true);
  EXPECT_EQ(r.spike_events.size(), r.total_spikes);
  std::uint64_t counted = 0;
  for (const auto& [t, j] : r.spike_events) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 300.0);
    EXPECT_LT(j, net.neuron_count());
    ++counted;
  }
  EXPECT_EQ(counted, r.total_spikes);
  const auto quiet = net.present(pattern_rates(), 100.0, false);
  EXPECT_TRUE(quiet.spike_events.empty()) << "recording is opt-in";
}

TEST(WtaNetwork, IzhikevichModelOptionWorks) {
  WtaConfig cfg = small_config();
  cfg.neuron_model = NeuronModelKind::kIzhikevich;
  WtaNetwork net(cfg);
  const auto r = net.present(pattern_rates(70.0, 2.0), 500.0, true);
  EXPECT_GT(r.total_spikes, 0u) << "Izhikevich first layer must spike";
  EXPECT_EQ(net.total_spikes(), r.total_spikes);
  // Learning must also run on the Izhikevich population.
  const auto before = net.conductance().to_vector();
  net.present(pattern_rates(70.0, 2.0), 500.0, true);
  EXPECT_NE(net.conductance().to_vector(), before);
  EXPECT_STREQ(neuron_model_name(cfg.neuron_model), "Izhikevich");
}

TEST(WtaNetwork, FusedStepMatchesUnfusedBitwise) {
  // The fused decay+accumulate+integrate kernel must preserve the exact FP
  // operation order of the three-phase path: spikes AND conductances bitwise.
  WtaConfig fused_cfg = small_config();
  WtaConfig unfused_cfg = small_config();
  unfused_cfg.fused_step = false;
  WtaNetwork fused(fused_cfg);
  WtaNetwork unfused(unfused_cfg);
  const auto rates = pattern_rates(70.0, 2.0);
  for (int i = 0; i < 5; ++i) {
    const auto rf = fused.present(rates, 350.0, true);
    const auto ru = unfused.present(rates, 350.0, true);
    EXPECT_EQ(rf.spike_counts, ru.spike_counts) << "presentation " << i;
    EXPECT_EQ(rf.input_spikes, ru.input_spikes);
  }
  EXPECT_EQ(fused.conductance().to_vector(), unfused.conductance().to_vector());
  EXPECT_EQ(std::vector<double>(fused.theta().begin(), fused.theta().end()),
            std::vector<double>(unfused.theta().begin(),
                                unfused.theta().end()));
}

TEST(WtaNetwork, FusedStepMatchesUnfusedOnIzhikevich) {
  WtaConfig fused_cfg = small_config();
  fused_cfg.neuron_model = NeuronModelKind::kIzhikevich;
  WtaConfig unfused_cfg = fused_cfg;
  unfused_cfg.fused_step = false;
  WtaNetwork fused(fused_cfg);
  WtaNetwork unfused(unfused_cfg);
  const auto rates = pattern_rates(70.0, 2.0);
  for (int i = 0; i < 3; ++i) {
    const auto rf = fused.present(rates, 350.0, true);
    const auto ru = unfused.present(rates, 350.0, true);
    EXPECT_EQ(rf.spike_counts, ru.spike_counts) << "presentation " << i;
  }
  EXPECT_EQ(fused.conductance().to_vector(), unfused.conductance().to_vector());
}

TEST(WtaNetwork, ReplicaReplaysPresentationsBitwise) {
  // The determinism contract behind image-parallel batching: a replica
  // synced to the source's state replays any presentation bit for bit.
  WtaNetwork net(small_config());
  const auto rates = pattern_rates(70.0, 2.0);
  for (int i = 0; i < 4; ++i) net.present(rates, 300.0, true);  // warm up

  Engine serial(1);
  WtaNetwork replica = net.replicate(&serial);
  EXPECT_EQ(replica.presentation_index(), net.presentation_index());
  EXPECT_EQ(replica.conductance().to_vector(), net.conductance().to_vector());

  const auto r_net = net.present(rates, 300.0, true);
  const auto r_rep = replica.present(rates, 300.0, true);
  EXPECT_EQ(r_net.spike_counts, r_rep.spike_counts);
  EXPECT_EQ(net.conductance().to_vector(), replica.conductance().to_vector());
  EXPECT_EQ(std::vector<double>(net.theta().begin(), net.theta().end()),
            std::vector<double>(replica.theta().begin(),
                                replica.theta().end()));
}

TEST(WtaNetwork, PresentationIndexDrivesTheDraws) {
  // Presenting image k on a replica whose index was advanced to k must match
  // the source presenting images 0..k in order — this is what lets workers
  // jump straight to their shard.
  WtaNetwork net(small_config());
  const auto rates = pattern_rates();
  Engine serial(1);
  WtaNetwork replica = net.replicate(&serial);

  net.present(rates, 250.0, false);               // image 0 (readout)
  const auto second = net.present(rates, 250.0, false);  // image 1

  replica.set_presentation_index(1);              // skip straight to image 1
  const auto jumped = replica.present(rates, 250.0, false);
  EXPECT_EQ(jumped.spike_counts, second.spike_counts);
}

TEST(WtaNetwork, SkipPresentationsAdvancesClockAndIndex) {
  WtaNetwork net(small_config());
  net.present(pattern_rates(), 250.0, false);
  EXPECT_EQ(net.presentation_index(), 1u);
  net.skip_presentations(3, 250.0);
  EXPECT_EQ(net.presentation_index(), 4u);
  EXPECT_DOUBLE_EQ(net.now(), 4 * 250.0);
  // After the skip the network continues exactly where a sequential run
  // would be.
  WtaNetwork seq(small_config());
  for (int i = 0; i < 4; ++i) seq.present(pattern_rates(), 250.0, false);
  const auto a = net.present(pattern_rates(), 250.0, false);
  const auto b = seq.present(pattern_rates(), 250.0, false);
  EXPECT_EQ(a.spike_counts, b.spike_counts);
}

TEST(ActivitySimulation, RatesScaleWithDrive) {
  SequentialRng rng(3);
  const auto conns = connect_random(
      100, 100, 0.01, [](NeuronIndex, NeuronIndex) { return 2.0; }, rng);
  ActivityConfig weak;
  weak.duration_ms = 500.0;
  weak.input_rate_hz = 10.0;
  weak.input_amplitude = 10.0;
  ActivityConfig strong = weak;
  strong.input_rate_hz = 80.0;
  const auto r_weak =
      run_lif_activity(100, paper_lif_parameters(), conns, weak);
  const auto r_strong =
      run_lif_activity(100, paper_lif_parameters(), conns, strong);
  EXPECT_GT(r_strong.mean_rate_hz, r_weak.mean_rate_hz);
}

TEST(ActivitySimulation, RecordsRasterAndPerNeuronCounts) {
  SequentialRng rng(3);
  const auto conns = connect_random(
      50, 50, 0.02, [](NeuronIndex, NeuronIndex) { return 1.0; }, rng);
  ActivityConfig cfg;
  cfg.duration_ms = 400.0;
  cfg.input_rate_hz = 60.0;
  cfg.input_amplitude = 15.0;
  const auto r = run_lif_activity(50, paper_lif_parameters(), conns, cfg);
  EXPECT_GT(r.total_spikes, 0u);
  const std::uint64_t sum = std::accumulate(
      r.per_neuron_spikes.begin(), r.per_neuron_spikes.end(), std::uint64_t{0});
  EXPECT_EQ(sum, r.total_spikes);
  EXPECT_EQ(r.raster.size(), std::min<std::size_t>(r.total_spikes, 20000));
  EXPECT_GT(r.steps_per_second, 0.0);
}

TEST(ActivitySimulation, MeanRateNormalizedBySimulatedTime) {
  // duration_ms = 100.5 with dt = 1.0 runs ceil(100.5) = 101 steps; the mean
  // rate must divide by the simulated 101 ms, not the requested 100.5 ms.
  SequentialRng rng(5);
  const auto conns = connect_random(
      40, 40, 0.05, [](NeuronIndex, NeuronIndex) { return 1.0; }, rng);
  ActivityConfig cfg;
  cfg.duration_ms = 100.5;
  cfg.dt = 1.0;
  cfg.input_rate_hz = 120.0;
  cfg.input_amplitude = 18.0;
  const auto r = run_lif_activity(40, paper_lif_parameters(), conns, cfg);
  ASSERT_GT(r.total_spikes, 0u);
  const double expected =
      static_cast<double>(r.total_spikes) / 40.0 / (101.0 * 1e-3);
  EXPECT_DOUBLE_EQ(r.mean_rate_hz, expected);
}

TEST(ActivitySimulation, IzhikevichVariantRuns) {
  SequentialRng rng(4);
  const auto conns = connect_random(
      50, 50, 0.02, [](NeuronIndex, NeuronIndex) { return 0.5; }, rng);
  ActivityConfig cfg;
  cfg.duration_ms = 400.0;
  cfg.input_rate_hz = 50.0;
  cfg.input_amplitude = 12.0;
  const auto r =
      run_izhikevich_activity(50, izhikevich_regular_spiking(), conns, cfg);
  EXPECT_GT(r.total_spikes, 0u);
}

}  // namespace
}  // namespace pss
