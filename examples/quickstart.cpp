// Quickstart: train a small stochastic-STDP SNN on the synthetic digit set
// and classify — the whole paper pipeline (Fig. 2) in ~40 lines of API use.
//
// Usage: quickstart [key=value ...]
//   neurons=100 train=400 label=200 eval=200 kind=stochastic|deterministic
//   option=fp32|16bit|8bit|4bit|2bit|highfreq  seed=1  verbose=0|1
#include <cstdio>
#include <string>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/idx.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/config.hpp"

namespace {

pss::LearningOption parse_option(const std::string& name) {
  if (name == "fp32") return pss::LearningOption::kFloat32;
  if (name == "16bit") return pss::LearningOption::k16Bit;
  if (name == "8bit") return pss::LearningOption::k8Bit;
  if (name == "4bit") return pss::LearningOption::k4Bit;
  if (name == "2bit") return pss::LearningOption::k2Bit;
  if (name == "highfreq") return pss::LearningOption::kHighFrequency;
  throw pss::Error("unknown option: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const pss::Config args = pss::Config::from_args(argc, argv);
  if (!args.get_bool("verbose", false)) {
    pss::set_log_level(pss::LogLevel::kWarn);
  }

  // Real MNIST is used automatically when PSS_MNIST_DIR points at the IDX
  // files; otherwise the synthetic substitute (DESIGN.md).
  pss::LabeledDataset data;
  if (auto real = pss::load_real_dataset_from_env("mnist")) {
    data = std::move(*real);
  } else {
    pss::SyntheticConfig cfg;
    cfg.train_count = static_cast<std::size_t>(args.get_int("train", 400)) * 2;
    cfg.test_count = 600;
    data = pss::make_synthetic_digits(cfg);
  }

  pss::ExperimentSpec spec;
  spec.name = "quickstart";
  spec.kind = args.get_string("kind", "stochastic") == "deterministic"
                  ? pss::StdpKind::kDeterministic
                  : pss::StdpKind::kStochastic;
  spec.option = parse_option(args.get_string("option", "fp32"));
  spec.neuron_count = static_cast<std::size_t>(args.get_int("neurons", 100));
  spec.train_images = static_cast<std::size_t>(args.get_int("train", 400));
  spec.label_images = static_cast<std::size_t>(args.get_int("label", 200));
  spec.eval_images = static_cast<std::size_t>(args.get_int("eval", 200));
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("quickstart: %s STDP, %s, %zu neurons, %zu train images (%s)\n",
              pss::stdp_kind_name(spec.kind),
              pss::learning_option_name(spec.option), spec.neuron_count,
              spec.train_images, data.name.c_str());

  const pss::ExperimentResult r = pss::run_learning_experiment(spec, data);

  std::printf("accuracy        : %.1f%%\n", 100.0 * r.accuracy);
  std::printf("labelled neurons: %zu / %zu\n", r.labelled_neurons,
              r.neuron_count);
  std::printf("training time   : %.1f s wall (%.0f s simulated)\n",
              r.train_wall_seconds, r.simulated_learning_ms * 1e-3);
  std::printf("map contrast    : %.3f   G at bottom/top: %.2f / %.2f\n",
              r.conductance_contrast, r.bottom_fraction, r.top_fraction);
  return 0;
}
