// Deterministic vs stochastic STDP on the feature-rich apparel dataset —
// the paper's Sec. IV-B scenario ("baseline test fails to gain accuracy...
// stochastic STDP is able to learn the more complex data set").
//
// Prints both confusion matrices with per-class recall using the
// Fashion-MNIST class names, highlighting the overlapping "tops" group
// (t-shirt / pullover / coat / shirt) where the deterministic rule washes
// out.
//
// Usage: fashion_comparison [neurons=100 train=400 label=250 eval=250 seed=1]
#include <cstdio>
#include <filesystem>

#include "pss/common/log.hpp"
#include "pss/data/idx.hpp"
#include "pss/data/synthetic_fashion.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/config.hpp"
#include "pss/io/pgm.hpp"
#include "pss/learning/trainer.hpp"

using namespace pss;

namespace {

struct Outcome {
  double accuracy = 0.0;
  std::vector<double> recall;
};

Outcome run(StdpKind kind, const LabeledDataset& data, const Config& args) {
  ExperimentSpec spec;
  spec.kind = kind;
  spec.option = LearningOption::kFloat32;
  spec.neuron_count = static_cast<std::size_t>(args.get_int("neurons", 100));
  spec.train_images = static_cast<std::size_t>(args.get_int("train", 400));
  spec.label_images = static_cast<std::size_t>(args.get_int("label", 250));
  spec.eval_images = static_cast<std::size_t>(args.get_int("eval", 250));
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.name = std::string("fashion ") + stdp_kind_name(kind);

  // Run the explicit pipeline so we can keep the confusion matrix.
  WtaNetwork net(spec.network_config());
  UnsupervisedTrainer trainer(net, spec.trainer_config());
  trainer.train(data.train.head(spec.train_images));
  const PixelFrequencyMap map(spec.trainer_config().f_min_hz,
                              spec.trainer_config().f_max_hz);
  const auto [label_set, eval_set] = data.labelling_split(spec.label_images);
  const LabelingResult labels =
      label_neurons(net, label_set, map, spec.t_label_ms);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           spec.t_infer_ms);
  const EvaluationResult eval =
      classifier.evaluate(eval_set.head(spec.eval_images));

  std::filesystem::create_directories("out");
  write_pgm(std::string("out/fashion_maps_") + stdp_kind_name(kind) + ".pgm",
            tile_images(conductance_maps(net, 25), 5, 5));

  Outcome o;
  o.accuracy = eval.accuracy;
  o.recall = eval.confusion.recall();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config args = Config::from_args(argc, argv);
    if (!args.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);

    LabeledDataset data;
    if (auto real = load_real_dataset_from_env("fashion-mnist")) {
      data = std::move(*real);
    } else {
      SyntheticConfig cfg;
      cfg.train_count =
          static_cast<std::size_t>(args.get_int("train", 400)) + 100;
      cfg.test_count = 600;
      data = make_synthetic_fashion(cfg);
    }
    std::printf("dataset: %s (%zu train / %zu test)\n\n", data.name.c_str(),
                data.train.size(), data.test.size());

    const Outcome det = run(StdpKind::kDeterministic, data, args);
    const Outcome sto = run(StdpKind::kStochastic, data, args);

    std::printf("accuracy: deterministic %.1f%% | stochastic %.1f%%\n\n",
                100 * det.accuracy, 100 * sto.accuracy);
    std::printf("%-12s %14s %14s\n", "class", "det recall", "stoch recall");
    for (Label c = 0; c < 10; ++c) {
      const bool tops = c == 0 || c == 2 || c == 4 || c == 6;
      std::printf("%-12s %13.0f%% %13.0f%%%s\n", fashion_class_name(c),
                  100 * det.recall[c], 100 * sto.recall[c],
                  tops ? "   <- overlapping silhouette group" : "");
    }
    std::printf("\nconductance maps: out/fashion_maps_deterministic.pgm, "
                "out/fashion_maps_stochastic.pgm\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
