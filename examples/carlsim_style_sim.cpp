// Using the CARLsim-style baseline simulator as a standalone library:
// a classic 80/20 excitatory/inhibitory cortical network (Izhikevich 2003)
// with conductance synapses, axonal delays and trace STDP — independent of
// the paper's WTA learning pipeline. This is the substrate behind the
// Fig. 4 comparison, exercised the way a CARLsim user would.
//
// Usage: carlsim_style_sim [exc=800 inh=200 duration_ms=1000 seed=42]
#include <cstdio>

#include "pss/baseline/izhi_network.hpp"
#include "pss/common/log.hpp"
#include "pss/io/config.hpp"
#include "pss/stats/raster.hpp"
#include "pss/stats/summary.hpp"

using namespace pss;

int main(int argc, char** argv) {
  try {
    const Config args = Config::from_args(argc, argv);
    if (!args.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);

    const auto n_exc = static_cast<std::size_t>(args.get_int("exc", 800));
    const auto n_inh = static_cast<std::size_t>(args.get_int("inh", 200));
    const double duration = args.get_double("duration_ms", 1000.0);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    BaselineConfig cfg;
    cfg.seed = seed;
    BaselineNetwork net(cfg);
    const int exc = net.add_group("exc", n_exc, izhikevich_regular_spiking());
    const int inh =
        net.add_group("inh", n_inh, izhikevich_fast_spiking(), true);

    SequentialRng wiring(seed);
    auto w_exc = [](NeuronIndex, NeuronIndex) { return 0.12; };
    auto w_inh = [](NeuronIndex, NeuronIndex) { return 0.5; };
    const int ee = net.connect(exc, exc,
                               connect_random(n_exc, n_exc, 0.02, w_exc,
                                              wiring, /*delay=*/2.0));
    net.connect(exc, inh, connect_random(n_exc, n_inh, 0.02, w_exc, wiring));
    net.connect(inh, exc, connect_random(n_inh, n_exc, 0.05, w_inh, wiring));
    net.enable_stdp(ee, TraceStdpParams{});

    net.set_poisson_drive(exc, 30.0, 12.0);
    net.set_poisson_drive(inh, 30.0, 12.0);

    std::printf("80/20 network: %zu exc + %zu inh neurons, STDP on E->E, "
                "%.0f ms\n\n",
                n_exc, n_inh, duration);
    const ActivityResult r = net.run(duration);

    std::vector<double> exc_rates;
    std::vector<double> inh_rates;
    for (std::size_t i = 0; i < n_exc + n_inh; ++i) {
      const double rate = r.per_neuron_spikes[i] / (duration * 1e-3);
      (i < n_exc ? exc_rates : inh_rates).push_back(rate);
    }
    const SummaryStats se = summarize(exc_rates);
    const SummaryStats si = summarize(inh_rates);
    std::printf("excitatory rate: mean %.1f Hz (sd %.1f, max %.1f)\n", se.mean,
                se.stddev, se.max);
    std::printf("inhibitory rate: mean %.1f Hz (sd %.1f, max %.1f)\n", si.mean,
                si.stddev, si.max);
    std::printf("wall-clock: %.2f s (%.0f steps/s)\n\n", r.wall_seconds,
                r.steps_per_second);

    SpikeRaster raster(n_exc + n_inh, duration);
    for (const auto& [t, n] : r.raster) raster.record(n, t);
    std::printf("raster (rows = neurons, subsampled; '.' = spike):\n%s",
                raster.to_string(76, 20).c_str());

    // STDP drift on the plastic E->E connection.
    double mean_w = 0.0;
    for (std::size_t k = 0; k < net.connection_count(ee); ++k) {
      mean_w += net.weight(ee, k);
    }
    mean_w /= static_cast<double>(net.connection_count(ee));
    std::printf("\nE->E mean weight after STDP: %.4f (initial 0.12)\n", mean_w);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
