// Full unsupervised-learning pipeline on MNIST(-like) data — the paper's
// Fig. 2 flow end to end with every stage exposed:
//   dataset -> pixel->frequency encoding -> WTA network with STDP ->
//   neuron labelling -> inference -> confusion matrix + conductance maps.
//
// Usage: mnist_unsupervised [key=value ...]
//   kind=stochastic|deterministic   option=fp32|16bit|8bit|4bit|2bit|highfreq
//   rounding=nearest|trunc|stochastic
//   neurons=100 train=400 label=250 eval=250 seed=1
//   maps=out/mnist_maps.pgm   curve=out/mnist_error.csv  checkpoints=4
//   workers=1 (0 = all cores; image-parallel labelling/eval, identical
//   results)   batch=1 (> 1 = minibatch STDP training)
//   backend=cpu|cpu_simd (cpu)  compute backend (README "Compute backends")
//   metrics=<path.json>  trace=<path.json>  manifest=<path.json>
//   profile=<path.json>  prom=<path.prom>  metrics_port=<port>
//   (observability sidecars + live exposition — see README "Observability")
//   checkpoint=<path> checkpoint_every=<N> resume=<path> faults=<spec>
//   (fault tolerance — see README "Fault tolerance & resume")
// Real MNIST is used when PSS_MNIST_DIR points at the IDX files.
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/idx.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/config.hpp"
#include "pss/io/csv.hpp"
#include "pss/io/pgm.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/obs/exporter.hpp"
#include "pss/obs/manifest.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"
#include "pss/obs/trace.hpp"
#include "tools/run_options.hpp"

using namespace pss;


int main(int argc, char** argv) {
  try {
    const Config args = Config::from_args(argc, argv);
    tools::require_known_keys(args, {"maps", "curve", "retries", "verbose"});
    if (!args.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);

    tools::arm_faults_from_config(args);

    const tools::ObsPaths obs_paths = tools::enable_observability(args);
    const std::string& trace_path = obs_paths.trace;
    const std::string& metrics_path = obs_paths.metrics;
    const std::string& manifest_path = obs_paths.manifest;
    const bool want_obs = obs_paths.any();
    std::optional<obs::MetricsExporter> exporter;
    if (obs_paths.metrics_port >= 0) {
      exporter.emplace(static_cast<std::uint16_t>(obs_paths.metrics_port));
      std::printf("metrics exporter listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(exporter->port()));
    }
    const std::uint64_t wall_t0 = obs::monotonic_ns();

    LabeledDataset data;
    if (auto real = load_real_dataset_from_env("mnist")) {
      data = std::move(*real);
    } else {
      SyntheticConfig cfg;
      cfg.train_count =
          static_cast<std::size_t>(args.get_int("train", 400)) + 200;
      cfg.test_count =
          static_cast<std::size_t>(args.get_int("label", 250)) +
          static_cast<std::size_t>(args.get_int("eval", 250));
      data = make_synthetic_digits(cfg);
    }

    ExperimentSpec spec =
        tools::spec_from_config(args, /*default_name=*/"mnist_unsupervised");
    // This demo defaults to four mid-training error-curve checkpoints; the
    // shared parser's default is 0 (final evaluation only).
    if (!args.has("checkpoints")) spec.checkpoints = 4;
    if (const auto parent =
            std::filesystem::path(spec.train_checkpoint_path).parent_path();
        !parent.empty()) {
      std::filesystem::create_directories(parent);
    }

    std::printf("pipeline: %s STDP, %s, rounding %s, %zu neurons, %zu train "
                "images (%s)\n",
                stdp_kind_name(spec.kind), learning_option_name(spec.option),
                rounding_mode_name(spec.rounding), spec.neuron_count,
                spec.train_images, data.name.c_str());

    // Stage 1+2: train / label / infer through the experiment harness.
    const ExperimentResult result = run_learning_experiment(spec, data);

    std::printf("\naccuracy %.1f%% | %zu/%zu neurons labelled | training "
                "%.1f s wall (%.0f s biological)\n",
                100.0 * result.accuracy, result.labelled_neurons,
                result.neuron_count, result.train_wall_seconds,
                result.simulated_learning_ms * 1e-3);
    std::printf("conductance: contrast %.3f, %.0f%% at G_min, %.0f%% at "
                "G_max\n",
                result.conductance_contrast, 100 * result.bottom_fraction,
                100 * result.top_fraction);

    std::printf("\nmoving error rate:\n");
    for (const auto& p : result.error_trace) {
      std::printf("  after %5zu images (%6.1f s bio): error %.1f%%\n",
                  p.images_seen, p.simulated_ms * 1e-3, 100 * p.error_rate);
    }

    // Stage 3: artifacts. Retrain a fresh same-seed network to export maps
    // (same trajectory), and dump the error curve as CSV.
    const std::string maps_path =
        args.get_string("maps", "out/mnist_maps.pgm");
    std::filesystem::create_directories(
        std::filesystem::path(maps_path).parent_path());
    WtaNetwork net(spec.network_config());
    // The maps retrain is a throwaway replay — keep it from overwriting the
    // real run's checkpoint file.
    TrainerConfig maps_cfg = spec.trainer_config();
    maps_cfg.checkpoint_every = 0;
    maps_cfg.checkpoint_path.clear();
    UnsupervisedTrainer trainer(net, maps_cfg);
    trainer.train(data.train.head(spec.train_images));
    const auto maps = conductance_maps(net, 25);
    write_pgm(maps_path, tile_images(maps, 5, 5));

    const std::string curve_path =
        args.get_string("curve", "out/mnist_error.csv");
    CsvWriter csv(curve_path, {"images", "sim_ms", "error_rate"});
    for (const auto& p : result.error_trace) {
      csv.row({static_cast<double>(p.images_seen), p.simulated_ms,
               p.error_rate});
    }
    std::printf("\nwrote %s (5x5 conductance maps) and %s (error curve)\n",
                maps_path.c_str(), curve_path.c_str());

    if (want_obs) {
      publish_engine_stats(default_engine(), "engine");
      obs::publish_profile_stats();
      if (!metrics_path.empty()) {
        obs::write_metrics_json(metrics_path, "mnist_unsupervised");
        std::printf("metrics saved: %s\n", metrics_path.c_str());
      }
      if (!trace_path.empty()) {
        obs::write_chrome_trace(trace_path);
        std::printf("trace saved: %s\n", trace_path.c_str());
      }
      if (!manifest_path.empty()) {
        obs::RunManifest manifest;
        manifest.tool = "mnist_unsupervised";
        manifest.dataset = data.name;
        manifest.seed = spec.seed;
        manifest.workers = spec.workers;
        manifest.batch_size = spec.batch_size;
        for (const auto& key : args.keys()) {
          manifest.config.emplace_back(key, args.get_string(key, ""));
        }
        manifest.wall_seconds =
            static_cast<double>(obs::monotonic_ns() - wall_t0) * 1e-9;
        manifest.results.emplace_back("accuracy", result.accuracy);
        manifest.results.emplace_back(
            "labelled_neurons",
            static_cast<double>(result.labelled_neurons));
        manifest.results.emplace_back("train_wall_seconds",
                                      result.train_wall_seconds);
        manifest.results.emplace_back("conductance_contrast",
                                      result.conductance_contrast);
        if (spec.train_checkpoint_every > 0 || result.lineage.resumed) {
          manifest.has_checkpoint = true;
          manifest.resumed = result.lineage.resumed;
          manifest.checkpoint_run_id = result.lineage.run_id;
          manifest.checkpoint_parent_run_id = result.lineage.parent_run_id;
          manifest.checkpoint_count = result.lineage.checkpoint_count;
          manifest.presentation_cursor = result.lineage.presentation_cursor;
        }
        obs::write_manifest(manifest_path, manifest);
        std::printf("manifest saved: %s\n", manifest_path.c_str());
      }
      if (!obs_paths.profile.empty()) {
        obs::write_profile_json(obs_paths.profile, "mnist_unsupervised");
        std::printf("profile saved: %s\n", obs_paths.profile.c_str());
      }
      if (!obs_paths.prom.empty()) {
        obs::write_prometheus_text(obs_paths.prom);
        std::printf("prometheus text saved: %s\n", obs_paths.prom.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
