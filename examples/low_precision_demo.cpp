// Low-precision learning walk-through (paper Sec. III-C / IV-D):
// demonstrates, at the level of a single synapse, *why* deterministic STDP
// collapses at 2 bits while stochastic STDP keeps learning — then confirms
// the effect with a small end-to-end run at each precision.
//
// Usage: low_precision_demo [train=250 neurons=80 seed=1]
#include <cstdio>

#include "pss/common/log.hpp"
#include "pss/common/rng.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/io/config.hpp"
#include "pss/synapse/stdp_updater.hpp"

using namespace pss;

namespace {

void single_synapse_story() {
  std::printf("--- single synapse at Q0.2 (2-bit): 200 causal pairings, "
              "gap 5 ms ---\n");
  std::printf("%-34s %10s %14s\n", "rule / rounding", "final G",
              "updates != 0");
  SequentialRng rng(9);
  for (const StdpKind kind :
       {StdpKind::kDeterministic, StdpKind::kStochastic}) {
    for (const RoundingMode mode :
         {RoundingMode::kTruncate, RoundingMode::kNearest,
          RoundingMode::kStochastic}) {
      StdpUpdaterConfig cfg;
      cfg.kind = kind;
      cfg.gate = table1_row(LearningOption::k2Bit).gate;
      cfg.format = q0_2();
      cfg.rounding = mode;
      const StdpUpdater u(cfg);
      double g = 0.25;
      int moved = 0;
      for (int i = 0; i < 200; ++i) {
        const double g2 = u.update_at_post_spike(g, 5.0, rng.uniform(),
                                                 rng.uniform(), rng.uniform());
        if (g2 != g) ++moved;
        g = g2;
      }
      std::printf("%-14s / %-17s %10.2f %14d\n", stdp_kind_name(kind),
                  rounding_mode_name(mode), g, moved);
    }
  }
  std::printf(
      "\nreading: the deterministic float ΔG (~0.006) is far below the 0.25\n"
      "quantum — truncation/nearest never move the synapse; stochastic\n"
      "rounding moves it occasionally (eq. 8). The stochastic rule applies\n"
      "a full quantum whenever its eq. 6 gate fires, so learning proceeds\n"
      "with a fine-grained *expected* step.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config args = Config::from_args(argc, argv);
    if (!args.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);

    single_synapse_story();

    std::printf("--- end-to-end accuracy per precision (round-to-nearest) ---\n");
    SyntheticConfig dcfg;
    dcfg.train_count = static_cast<std::size_t>(args.get_int("train", 250)) + 50;
    dcfg.test_count = 500;
    const LabeledDataset data = make_synthetic_digits(dcfg);

    std::printf("%-10s %16s %16s\n", "precision", "deterministic", "stochastic");
    for (const auto& [option, label] :
         {std::pair<LearningOption, const char*>{LearningOption::k2Bit, "Q0.2"},
          {LearningOption::k8Bit, "Q1.7"},
          {LearningOption::kFloat32, "fp32"}}) {
      double acc[2] = {0.0, 0.0};
      int k = 0;
      for (const StdpKind kind :
           {StdpKind::kDeterministic, StdpKind::kStochastic}) {
        ExperimentSpec spec;
        spec.kind = kind;
        spec.option = option;
        spec.neuron_count =
            static_cast<std::size_t>(args.get_int("neurons", 80));
        spec.train_images =
            static_cast<std::size_t>(args.get_int("train", 250));
        spec.label_images = 250;
        spec.eval_images = 250;
        spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
        spec.name = std::string(label) + " " + stdp_kind_name(kind);
        acc[k++] = run_learning_experiment(spec, data).accuracy;
      }
      std::printf("%-10s %15.1f%% %15.1f%%\n", label, 100 * acc[0],
                  100 * acc[1]);
    }
    std::printf("\nexpected shape (Table II): deterministic collapses toward "
                "chance below Q1.15; stochastic degrades gracefully.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
